//! Generation directories, the manifest-last commit protocol, and the
//! quarantining recovery path.
//!
//! Layout under the store root:
//!
//! ```text
//! <root>/
//!   gen-00000001/
//!     index.bin        # the BiG-index hierarchy
//!     params.bin       # BlinksParams + RClique + EvalOptions
//!     banks-000.bin    # per-layer BANKS index, m = 0..=h
//!     blinks-000.bin   # per-layer BLINKS index
//!     rclique-000.bin  # per-layer r-clique index
//!     ...
//!     MANIFEST         # committed last; lists every file + checksum
//!   gen-00000002/
//!   quarantine/
//!     gen-00000003/    # partial or corrupt, moved aside by recovery
//! ```
//!
//! A generation *exists* iff its `MANIFEST` is committed and every
//! listed file matches its recorded length and checksum. [`Store::save`]
//! writes data files first (each tmp + fsync + rename), the manifest
//! last, then fsyncs the directory — so a crash at any point leaves
//! either no manifest (partial → quarantined) or a fully valid
//! generation. [`Store::load_latest`] scans newest-first, retries
//! transient I/O with capped exponential backoff, quarantines bad
//! generations with typed errors, and verifies the survivor through
//! `bgi_verify::check_index` before returning it.

use crate::bundle::{
    decode_banks, decode_blinks, decode_index, decode_params, decode_rclique, encode_banks,
    encode_blinks, encode_index, encode_params, encode_rclique, IndexBundle,
};
use crate::codec::{fnv1a64, CodecError, Dec, Enc, Section};
use crate::error::{RetryPolicy, StoreError};
use crate::failpoint::Failpoints;
use crate::fsio;
use std::fs;
use std::path::{Path, PathBuf};

const MANIFEST: &str = "MANIFEST";
const GEN_PREFIX: &str = "gen-";
const QUARANTINE: &str = "quarantine";

/// A handle to an on-disk store directory.
#[derive(Debug, Clone)]
pub struct Store {
    root: PathBuf,
    fp: Failpoints,
    retry: RetryPolicy,
}

/// One manifest entry: a data file with its committed size and
/// checksum.
#[derive(Debug, Clone, PartialEq, Eq)]
struct ManifestEntry {
    name: String,
    len: u64,
    checksum: u64,
}

impl Store {
    /// Opens (creating if needed) a store rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, StoreError> {
        Self::open_with(root, Failpoints::disabled(), RetryPolicy::default())
    }

    /// [`Store::open`] with explicit fault injection and retry policy
    /// (the test-harness entry point).
    pub fn open_with(
        root: impl Into<PathBuf>,
        fp: Failpoints,
        retry: RetryPolicy,
    ) -> Result<Self, StoreError> {
        let root = root.into();
        fsio::create_dir(&fp, "save.create_dir", &root)?;
        Ok(Store { root, fp, retry })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The fault-injection registry this store threads through its I/O.
    pub fn failpoints(&self) -> &Failpoints {
        &self.fp
    }

    /// Opens the store's write-ahead log (`wal.log` in the root),
    /// replaying its committed prefix. The log shares this store's
    /// failpoint registry, so the crash matrix covers its I/O sites
    /// alongside the generation save path.
    pub fn open_wal(&self) -> Result<(crate::wal::Wal, Vec<crate::wal::UpdateBatch>), StoreError> {
        crate::wal::Wal::open(&self.root, self.fp.clone())
    }

    /// Numbers of all complete generations (committed manifest present),
    /// ascending. Does not validate checksums.
    pub fn generations(&self) -> Result<Vec<u64>, StoreError> {
        let mut out: Vec<u64> = self
            .scan_generation_dirs()?
            .into_iter()
            .filter(|(_, dir)| dir.join(MANIFEST).is_file())
            .map(|(n, _)| n)
            .collect();
        out.sort_unstable();
        Ok(out)
    }

    /// Saves `bundle` as a new generation and returns its number.
    ///
    /// On error the partially written generation is left in place — a
    /// crash could leave the same state — and the next
    /// [`Store::load_latest`] quarantines it.
    pub fn save(&self, bundle: &IndexBundle) -> Result<u64, StoreError> {
        self.save_with_threads(bundle, 1)
    }

    /// [`Store::save`] with the per-section encodes fanned out over up
    /// to `threads` scoped workers.
    ///
    /// Only the *encoding* (pure CPU, no I/O, no failpoints) is
    /// parallel. The writes themselves — and therefore every labeled
    /// failpoint hit, the on-disk file order, and the manifest-last
    /// commit point — run in exactly the serial order, so the
    /// crash-matrix guarantees are untouched and the saved bytes are
    /// identical for every thread count.
    pub fn save_with_threads(
        &self,
        bundle: &IndexBundle,
        threads: usize,
    ) -> Result<u64, StoreError> {
        let generation = self.next_generation_number()?;
        let dir = self.generation_dir(generation);
        fsio::create_dir(&self.fp, "save.create_dir", &dir)?;

        // Fixed file layout: index, params, then the per-layer indexes
        // family by family. Task i always encodes the same section.
        let (nb, nl) = (bundle.banks.len(), bundle.blinks.len());
        let total = 2 + nb + nl + bundle.rclique.len();
        let files: Vec<(String, Vec<u8>)> = bgi_graph::par::par_map(threads, total, |i| {
            if i == 0 {
                ("index.bin".to_string(), encode_index(&bundle.index))
            } else if i == 1 {
                (
                    "params.bin".to_string(),
                    encode_params(&bundle.blinks_params, &bundle.rclique_params, &bundle.eval),
                )
            } else if i < 2 + nb {
                let m = i - 2;
                (format!("banks-{m:03}.bin"), encode_banks(&bundle.banks[m]))
            } else if i < 2 + nb + nl {
                let m = i - 2 - nb;
                (
                    format!("blinks-{m:03}.bin"),
                    encode_blinks(&bundle.blinks[m]),
                )
            } else {
                let m = i - 2 - nb - nl;
                (
                    format!("rclique-{m:03}.bin"),
                    encode_rclique(&bundle.rclique[m]),
                )
            }
        });

        let mut entries: Vec<ManifestEntry> = Vec::with_capacity(files.len());
        for (name, bytes) in files {
            fsio::write_atomic(
                &self.fp,
                &dir,
                &name,
                &bytes,
                "save.write_file",
                "save.fsync_file",
                "save.rename_file",
            )?;
            entries.push(ManifestEntry {
                checksum: fnv1a64(&bytes),
                len: bytes.len() as u64,
                name,
            });
        }

        // The commit point: until this rename lands, the generation
        // does not exist.
        fsio::write_atomic(
            &self.fp,
            &dir,
            MANIFEST,
            &encode_manifest(&entries),
            "save.write_manifest",
            "save.fsync_manifest",
            "save.rename_manifest",
        )?;
        fsio::fsync_dir(&self.fp, "save.fsync_dir", &dir)?;
        Ok(generation)
    }

    /// Recovery: loads the newest complete, checksum-clean, verified
    /// generation. Partial or corrupt newer generations are moved to
    /// `quarantine/` (the typed reason is carried in the returned error
    /// only when *nothing* loadable remains). Transient I/O errors are
    /// retried under the store's [`RetryPolicy`] and never cause
    /// quarantining.
    pub fn load_latest(&self) -> Result<(u64, IndexBundle), StoreError> {
        let mut dirs = self.scan_generation_dirs()?;
        dirs.sort_by_key(|&(n, _)| std::cmp::Reverse(n));
        let mut first_failure: Option<StoreError> = None;
        for (generation, dir) in dirs {
            match self.retry.run(|| self.load_generation(generation, &dir)) {
                Ok(bundle) => return Ok((generation, bundle)),
                Err(e @ (StoreError::Io { .. } | StoreError::Injected { .. })) => {
                    // The data may be fine; do not quarantine on I/O
                    // failure that survived retrying.
                    return Err(e);
                }
                Err(e) => {
                    self.quarantine(generation, &dir)?;
                    first_failure.get_or_insert(e);
                }
            }
        }
        Err(first_failure.unwrap_or(StoreError::NoGeneration))
    }

    /// Loads one generation end to end: manifest, checksums, decode,
    /// structural validation, invariant verification.
    fn load_generation(&self, generation: u64, dir: &Path) -> Result<IndexBundle, StoreError> {
        let manifest_path = dir.join(MANIFEST);
        if !manifest_path.is_file() {
            return Err(StoreError::Partial { generation });
        }
        let corrupt = |detail: String| StoreError::Corrupt { generation, detail };
        let manifest_bytes = fsio::read_file(&self.fp, "load.read_manifest", &manifest_path)?;
        let entries =
            decode_manifest(&manifest_bytes).map_err(|e| corrupt(format!("manifest: {e}")))?;

        let mut files: Vec<(String, Vec<u8>)> = Vec::with_capacity(entries.len());
        for entry in &entries {
            let bytes = fsio::read_file(&self.fp, "load.read_file", &dir.join(&entry.name))?;
            if bytes.len() as u64 != entry.len {
                return Err(corrupt(format!(
                    "{}: {} bytes on disk, manifest says {}",
                    entry.name,
                    bytes.len(),
                    entry.len
                )));
            }
            let sum = fnv1a64(&bytes);
            if sum != entry.checksum {
                return Err(corrupt(format!(
                    "{}: checksum {sum:#x} does not match manifest {:#x}",
                    entry.name, entry.checksum
                )));
            }
            files.push((entry.name.clone(), bytes));
        }
        let get = |name: &str| -> Result<&[u8], StoreError> {
            files
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, b)| b.as_slice())
                .ok_or_else(|| corrupt(format!("manifest lists no {name}")))
        };

        let index =
            decode_index(get("index.bin")?).map_err(|e| corrupt(format!("index.bin: {e}")))?;
        let (blinks_params, rclique_params, eval) =
            decode_params(get("params.bin")?).map_err(|e| corrupt(format!("params.bin: {e}")))?;

        let h = index.num_layers();
        let mut banks = Vec::with_capacity(h + 1);
        let mut blinks = Vec::with_capacity(h + 1);
        let mut rclique = Vec::with_capacity(h + 1);
        for m in 0..=h {
            let n = index.graph_at(m).num_vertices();
            let name = format!("banks-{m:03}.bin");
            banks.push(decode_banks(get(&name)?, n).map_err(|e| corrupt(format!("{name}: {e}")))?);
            let name = format!("blinks-{m:03}.bin");
            blinks
                .push(decode_blinks(get(&name)?, n).map_err(|e| corrupt(format!("{name}: {e}")))?);
            let name = format!("rclique-{m:03}.bin");
            rclique
                .push(decode_rclique(get(&name)?, n).map_err(|e| corrupt(format!("{name}: {e}")))?);
        }

        // The verification gate: structural decoding succeeded, but the
        // hierarchy must also satisfy the paper's invariants before a
        // serving process may answer from it.
        let report = bgi_verify::check_index(&index);
        if !report.is_clean() {
            return Err(StoreError::VerifyFailed {
                generation,
                violations: report.total_violations(),
            });
        }
        Ok(IndexBundle {
            index,
            banks,
            blinks,
            rclique,
            blinks_params,
            rclique_params,
            eval,
        })
    }

    /// Moves a bad generation into `quarantine/` so it is never
    /// considered again but remains available for post-mortem.
    fn quarantine(&self, generation: u64, dir: &Path) -> Result<(), StoreError> {
        let qdir = self.root.join(QUARANTINE);
        fsio::create_dir(&self.fp, "save.create_dir", &qdir)?;
        let mut target = qdir.join(format!("{GEN_PREFIX}{generation:08}"));
        // A generation may be quarantined more than once across
        // re-saves; keep every specimen.
        let mut suffix = 0u32;
        while target.exists() {
            suffix += 1;
            target = qdir.join(format!("{GEN_PREFIX}{generation:08}.{suffix}"));
        }
        fs::rename(dir, &target).map_err(|e| StoreError::Io {
            context: format!("quarantining {}", dir.display()),
            source: e,
        })
    }

    /// Paths currently sitting in `quarantine/`.
    pub fn quarantined(&self) -> Vec<PathBuf> {
        let qdir = self.root.join(QUARANTINE);
        let Ok(rd) = fs::read_dir(&qdir) else {
            return Vec::new();
        };
        let mut out: Vec<PathBuf> = rd.filter_map(|e| e.ok().map(|e| e.path())).collect();
        out.sort();
        out
    }

    fn generation_dir(&self, generation: u64) -> PathBuf {
        self.root.join(format!("{GEN_PREFIX}{generation:08}"))
    }

    /// All `gen-*` directories under the root (complete or not), with
    /// their parsed numbers.
    fn scan_generation_dirs(&self) -> Result<Vec<(u64, PathBuf)>, StoreError> {
        let rd = fs::read_dir(&self.root).map_err(|e| StoreError::Io {
            context: format!("listing {}", self.root.display()),
            source: e,
        })?;
        let mut out = Vec::new();
        for entry in rd {
            let entry = entry.map_err(|e| StoreError::Io {
                context: format!("listing {}", self.root.display()),
                source: e,
            })?;
            let path = entry.path();
            if !path.is_dir() {
                continue;
            }
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            let Some(number) = name.strip_prefix(GEN_PREFIX) else {
                continue;
            };
            let Ok(n) = number.parse::<u64>() else {
                continue;
            };
            out.push((n, path));
        }
        Ok(out)
    }

    /// Max over every generation directory — partial ones included, so
    /// a crashed save never gets its number reused.
    fn next_generation_number(&self) -> Result<u64, StoreError> {
        let max = self
            .scan_generation_dirs()?
            .into_iter()
            .map(|(n, _)| n)
            .max()
            .unwrap_or(0);
        Ok(max + 1)
    }
}

fn encode_manifest(entries: &[ManifestEntry]) -> Vec<u8> {
    let mut e = Enc::new(Section::Manifest);
    e.u64(entries.len() as u64);
    for entry in entries {
        e.bytes(entry.name.as_bytes());
        e.u64(entry.len);
        e.u64(entry.checksum);
    }
    e.finish()
}

fn decode_manifest(bytes: &[u8]) -> Result<Vec<ManifestEntry>, CodecError> {
    let mut d = Dec::open(bytes, Section::Manifest)?;
    let n = d.seq_len()?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let name = String::from_utf8(d.bytes()?.to_vec()).map_err(|_| CodecError {
            detail: "non-UTF-8 manifest entry name".to_string(),
        })?;
        if name.contains('/') || name.contains('\\') || name == ".." {
            return Err(CodecError {
                detail: format!("manifest entry name {name:?} escapes the generation directory"),
            });
        }
        let len = d.u64()?;
        let checksum = d.u64()?;
        out.push(ManifestEntry {
            name,
            len,
            checksum,
        });
    }
    d.finish()?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_roundtrip() {
        let entries = vec![
            ManifestEntry {
                name: "index.bin".into(),
                len: 123,
                checksum: 0xdead,
            },
            ManifestEntry {
                name: "banks-000.bin".into(),
                len: 0,
                checksum: 0,
            },
        ];
        let bytes = encode_manifest(&entries);
        assert_eq!(decode_manifest(&bytes).unwrap(), entries);
    }

    #[test]
    fn manifest_rejects_path_escapes() {
        let entries = vec![ManifestEntry {
            name: "../evil".into(),
            len: 1,
            checksum: 2,
        }];
        let bytes = encode_manifest(&entries);
        assert!(decode_manifest(&bytes).is_err());
    }
}
