//! Group commit: coalescing concurrent writers into one commit cycle.
//!
//! A WAL commit pays one positioned write plus one fsync regardless of
//! how many records it carries ([`crate::wal::Wal::append_group`]), so
//! the write path wants concurrent callers to share a cycle instead of
//! queueing N fsyncs. [`CommitQueue`] implements the classic
//! leader/follower protocol:
//!
//! 1. every caller enqueues its item under the queue mutex and receives
//!    a ticket;
//! 2. if no leader is active, the caller **becomes** the leader: it
//!    drains the whole pending queue (its own item plus everything that
//!    arrived since the previous cycle), releases the mutex, and runs
//!    the caller-supplied `process` closure over the drained batch —
//!    one WAL group append, one fsync, one index patch;
//! 3. otherwise the caller is a **follower**: it waits on a condvar
//!    until a leader publishes its result (paired positionally with its
//!    ticket) and returns it without ever touching the WAL.
//!
//! Grouping forms exactly when it pays: while a leader is inside
//! `process` (hundreds of microseconds of fsync + patching), arriving
//! writers pile up in `pending` at nanosecond cost, and whichever of
//! them wakes first after publication leads the next cycle with the
//! whole pile.
//!
//! **Leader death.** `process` runs caller code and may panic. A
//! [`DeathGuard`] armed around the call marks every drained ticket as
//! done-with-`None` during unwinding, clears the leader flag, and wakes
//! all waiters: followers whose items were in the dead leader's batch
//! observe `None` (their commit outcome is unknown — exactly the
//! semantics of a torn commit), while followers still in `pending` are
//! untouched and one of them takes over as the next leader. Follower
//! waits start with a few *timed* rechecks — a missed wakeup or a
//! stalled leader degrades to a periodic re-check instead of a hang —
//! then fall back to an untimed wait, which is safe because every
//! leader exit path (publication or `DeathGuard` unwinding) notifies
//! the condvar while the recheck runs under the queue mutex, so no
//! wakeup can be lost. Bounding the timed phase also keeps the loop
//! finite under `bgi-check` simulation, where an armed timeout is
//! eligible to fire at every schedule point: the checker explores each
//! timeout-driven takeover edge without the recheck loop itself
//! becoming a livelock.
//!
//! The queue is deliberately generic over item and result types — it
//! knows nothing about WALs — so the model tests can drive it with
//! plain integers while bgi-service commits whole update batches
//! through it.

use bgi_check::sync::{thread, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// How long a follower waits before re-checking the queue state. Purely
/// a lost-wakeup / stalled-leader backstop: publication normally wakes
/// followers via the condvar immediately.
const FOLLOWER_RECHECK: Duration = Duration::from_millis(10);

/// How long a leader holds its cycle open for stragglers when the
/// *previous* cycle was larger than what it drained (see
/// [`CommitQueue::commit`]). Small against the cost of a cycle (an
/// fsync alone is tens of times longer) but ample for a writer that
/// just picked up its previous result to re-enqueue.
const FORMATION_WINDOW: Duration = Duration::from_micros(500);

/// How many consecutive timed rechecks a follower performs before
/// switching to an untimed wait. Keeps the recheck loop finite under
/// simulation (see the module docs) while still giving real followers
/// a brief self-service window against stalled leaders.
const FOLLOWER_TIMED_RECHECKS: u32 = 3;

/// A leader/follower commit queue; see the module docs for the
/// protocol.
pub struct CommitQueue<T, R> {
    state: Mutex<State<T, R>>,
    cv: Condvar,
}

struct State<T, R> {
    next_ticket: u64,
    /// Items waiting for a leader, in arrival order.
    pending: Vec<(u64, T)>,
    /// Published results awaiting pickup by their follower. `None`
    /// means the leader died mid-cycle with this ticket in its batch.
    done: Vec<(u64, Option<R>)>,
    /// True while some caller is inside `process`.
    leader: bool,
    /// Size of the most recent published group — the concurrency hint
    /// behind the formation window (see [`CommitQueue::commit`]).
    last_group: usize,
}

impl<T, R> Default for CommitQueue<T, R> {
    fn default() -> Self {
        CommitQueue::new()
    }
}

impl<T, R> CommitQueue<T, R> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        CommitQueue {
            state: Mutex::new(State {
                next_ticket: 0,
                pending: Vec::new(),
                done: Vec::new(),
                leader: false,
                last_group: 0,
            }),
            cv: Condvar::new(),
        }
    }

    /// Commits `item` through the group protocol. Exactly one of the
    /// concurrent callers runs `process` over the drained batch (in
    /// arrival order — the caller's own item is somewhere inside);
    /// `process` must return one result per input item, in order.
    ///
    /// Returns this caller's result, or `None` if the leader handling
    /// its item died (panicked) mid-cycle — the commit outcome is then
    /// unknown, like a client losing its connection mid-commit. If
    /// `process` itself panics while *this* caller is the leader, the
    /// panic propagates after the guard has released the victims.
    pub fn commit<F>(&self, item: T, process: F) -> Option<R>
    where
        F: FnOnce(Vec<T>) -> Vec<R>,
    {
        let mut st = lock(&self.state);
        let ticket = st.next_ticket;
        st.next_ticket += 1;
        st.pending.push((ticket, item));
        let mut timed_rechecks = 0u32;
        loop {
            if let Some(result) = take_done(&mut st.done, ticket) {
                return result;
            }
            if !st.leader {
                break;
            }
            // Follower: a leader is in flight. Wait for publication —
            // first with a timeout (bounds lost-wakeup / stalled-leader
            // scenarios and gives the model checker takeover edges),
            // then untimed: the recheck above runs under the mutex, so
            // a leader exiting between it and the wait cannot slip a
            // notification past us.
            if timed_rechecks < FOLLOWER_TIMED_RECHECKS {
                let (g, timeout) = self
                    .cv
                    .wait_timeout(st, FOLLOWER_RECHECK)
                    .unwrap_or_else(PoisonError::into_inner);
                st = g;
                if timeout.timed_out() {
                    timed_rechecks += 1;
                } else {
                    timed_rechecks = 0;
                }
            } else {
                st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
                timed_rechecks = 0;
            }
        }
        // Leader: drain everything queued so far and process it as one
        // group, outside the lock so followers can keep enqueueing.
        st.leader = true;
        let mut drained = std::mem::take(&mut st.pending);
        let hint = st.last_group;
        drop(st);
        // Formation window: the previous cycle carried more writers
        // than we just drained, so the missing ones are almost
        // certainly between commits — they picked up their results
        // microseconds ago and are about to re-enqueue. Without this
        // wait the first writer back leads a group of one and the
        // steady state degenerates into alternating 1-and-(N-1)
        // cycles, each paying a full fsync. A solo writer never waits:
        // its previous group size is 1.
        if drained.len() < hint {
            thread::sleep(FORMATION_WINDOW);
            let mut st = lock(&self.state);
            drained.extend(std::mem::take(&mut st.pending));
            drop(st);
        }
        let tickets: Vec<u64> = drained.iter().map(|&(t, _)| t).collect();
        let victims: Vec<u64> = tickets.iter().copied().filter(|&t| t != ticket).collect();
        let mut guard = DeathGuard {
            queue: self,
            victims: &victims,
            armed: true,
        };
        let items: Vec<T> = drained.into_iter().map(|(_, x)| x).collect();
        let results = process(items);
        guard.armed = false;
        drop(guard);

        let mut st = lock(&self.state);
        let mut it = results.into_iter();
        let mut own: Option<R> = None;
        for &t in &tickets {
            // Positional pairing; a short result vector degrades the
            // tail to `None` instead of panicking in the write path.
            let r = it.next();
            if t == ticket {
                own = r;
            } else {
                st.done.push((t, r));
            }
        }
        st.leader = false;
        st.last_group = tickets.len();
        self.cv.notify_all();
        drop(st);
        own
    }
}

/// Releases a dead leader's followers during unwinding; see the module
/// docs.
struct DeathGuard<'a, T, R> {
    queue: &'a CommitQueue<T, R>,
    victims: &'a [u64],
    armed: bool,
}

impl<T, R> Drop for DeathGuard<'_, T, R> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let mut st = lock(&self.queue.state);
        for &t in self.victims {
            st.done.push((t, None));
        }
        st.leader = false;
        st.last_group = self.victims.len() + 1;
        self.queue.cv.notify_all();
    }
}

fn lock<'a, T, R>(m: &'a Mutex<State<T, R>>) -> MutexGuard<'a, State<T, R>> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Removes and returns the published slot for `ticket`, if any. The
/// outer `Option` is "published yet?", the inner one is the result
/// itself (`None` = the leader died with this ticket in its batch).
fn take_done<R>(done: &mut Vec<(u64, Option<R>)>, ticket: u64) -> Option<Option<R>> {
    let i = done.iter().position(|&(t, _)| t == ticket)?;
    Some(done.swap_remove(i).1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Barrier};
    use std::thread;

    #[test]
    fn solo_caller_leads_its_own_group_of_one() {
        let q: CommitQueue<u32, u32> = CommitQueue::new();
        let r = q.commit(7, |items| {
            assert_eq!(items, vec![7]);
            items.iter().map(|x| x * 10).collect()
        });
        assert_eq!(r, Some(70));
        // The queue is reusable after a cycle.
        assert_eq!(q.commit(8, |items| items), Some(8));
    }

    #[test]
    fn every_caller_gets_its_own_result() {
        let q: Arc<CommitQueue<u32, u32>> = Arc::new(CommitQueue::new());
        let mut handles = Vec::new();
        for k in 0..16u32 {
            let q = Arc::clone(&q);
            handles.push(thread::spawn(move || {
                q.commit(k, |items| items.iter().map(|x| x * 2 + 1).collect())
            }));
        }
        for (k, h) in handles.into_iter().enumerate() {
            assert_eq!(h.join().unwrap(), Some(k as u32 * 2 + 1));
        }
    }

    #[test]
    fn followers_coalesce_behind_a_blocked_leader() {
        let q: Arc<CommitQueue<u32, u32>> = Arc::new(CommitQueue::new());
        let gate = Arc::new(Barrier::new(2));
        let calls = Arc::new(AtomicUsize::new(0));
        let enqueued = Arc::new(AtomicUsize::new(0));

        // Leader: holds the cycle open until main releases it.
        let leader = {
            let (q, gate, calls) = (Arc::clone(&q), Arc::clone(&gate), Arc::clone(&calls));
            thread::spawn(move || {
                q.commit(0, move |items| {
                    calls.fetch_add(1, Ordering::SeqCst);
                    gate.wait();
                    items
                })
            })
        };
        // Followers: enqueue while the leader is in flight.
        let mut followers = Vec::new();
        for k in 1..=4u32 {
            let (q, calls, enqueued) = (Arc::clone(&q), Arc::clone(&calls), Arc::clone(&enqueued));
            followers.push(thread::spawn(move || {
                enqueued.fetch_add(1, Ordering::SeqCst);
                q.commit(k, move |items| {
                    calls.fetch_add(1, Ordering::SeqCst);
                    items
                })
            }));
        }
        while enqueued.load(Ordering::SeqCst) < 4 {
            thread::yield_now();
        }
        // Give the followers time to make it from the counter bump into
        // the pending queue before releasing the leader.
        thread::sleep(std::time::Duration::from_millis(100));
        gate.wait();

        assert_eq!(leader.join().unwrap(), Some(0));
        for (k, h) in followers.into_iter().enumerate() {
            assert_eq!(h.join().unwrap(), Some(k as u32 + 1));
        }
        // 5 callers, but the 4 followers shared (at most two) cycles.
        assert!(
            calls.load(Ordering::SeqCst) <= 3,
            "expected grouping, got {} process calls",
            calls.load(Ordering::SeqCst)
        );
    }

    #[test]
    fn dead_leader_releases_victims_and_a_follower_takes_over() {
        let q: Arc<CommitQueue<u32, u32>> = Arc::new(CommitQueue::new());
        let gate = Arc::new(Barrier::new(2));
        let enqueued = Arc::new(AtomicUsize::new(0));

        // `process` panics exactly when it sees a group of >= 2 items,
        // so the barrier-holding leader (group of 1) survives and the
        // follower group's leader dies with the others as victims.
        let poisoned = |items: Vec<u32>| -> Vec<u32> {
            assert!(items.len() < 2, "injected leader death");
            items
        };

        let blocker = {
            let (q, gate) = (Arc::clone(&q), Arc::clone(&gate));
            thread::spawn(move || {
                q.commit(0, move |items| {
                    gate.wait();
                    items
                })
            })
        };
        let mut followers = Vec::new();
        for k in 1..=3u32 {
            let (q, enqueued) = (Arc::clone(&q), Arc::clone(&enqueued));
            followers.push(thread::spawn(move || {
                enqueued.fetch_add(1, Ordering::SeqCst);
                q.commit(k, poisoned)
            }));
        }
        while enqueued.load(Ordering::SeqCst) < 3 {
            thread::yield_now();
        }
        thread::sleep(std::time::Duration::from_millis(100));
        gate.wait();
        assert_eq!(blocker.join().unwrap(), Some(0));

        // One follower became leader, drained all three, and panicked:
        // its join reports the panic, the other two observe None. (If a
        // follower raced in late and led a singleton group, it gets its
        // result back — also fine; the invariant is: every thread
        // returns, none deadlocks.)
        let mut panics = 0;
        let mut nones = 0;
        let mut somes = 0;
        for h in followers {
            match h.join() {
                Err(_) => panics += 1,
                Ok(None) => nones += 1,
                Ok(Some(_)) => somes += 1,
            }
        }
        assert_eq!(panics + nones + somes, 3);
        assert!(panics >= 1, "some leader must have hit the panic");
        // The queue survives the death: a fresh commit goes through.
        assert_eq!(q.commit(9, |items| items), Some(9));
    }
}
