//! Deterministic fault injection for store I/O.
//!
//! Every I/O primitive in `fsio` passes a *label* through
//! [`Failpoints::check`] before acting. A disabled registry (the
//! production default) is a no-op; an enabled one counts hits per label
//! and fires armed plans at exact `(label, nth-hit)` coordinates, which
//! is what lets the crash-matrix suite enumerate every labeled point of
//! a save and kill the write there, deterministically.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// What an armed failpoint does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailAction {
    /// Return a transient I/O error (`ErrorKind::Interrupted`) — the
    /// retry policy is expected to absorb these.
    Transient,
    /// Write only a prefix of the buffer, then die: models a crash in
    /// the middle of a `write(2)`. Only meaningful on write labels.
    Torn,
    /// Die before the operation takes effect: models a crash between
    /// two I/O operations.
    Crash,
}

#[derive(Debug, Default)]
struct Inner {
    /// Armed plans: `(label, nth-hit)` → action, consumed on fire.
    plans: HashMap<(String, u64), FailAction>,
    /// Total hits seen per label (1-based coordinates for plans).
    hits: HashMap<String, u64>,
    /// Labels in first-hit order, for catalog assertions.
    order: Vec<String>,
}

/// A shared, thread-safe failpoint registry.
///
/// Cloning shares the registry (it is an `Arc` inside), so a store and
/// the test driving it observe the same counters.
#[derive(Debug, Clone, Default)]
pub struct Failpoints {
    // `None` = disabled: checks compile down to a branch on a niche.
    inner: Option<Arc<Mutex<Inner>>>,
}

impl Failpoints {
    /// The production registry: every check is a no-op.
    pub fn disabled() -> Self {
        Failpoints { inner: None }
    }

    /// An enabled registry that records hits and can arm plans.
    pub fn enabled() -> Self {
        Failpoints {
            inner: Some(Arc::new(Mutex::new(Inner::default()))),
        }
    }

    /// True when fault injection is active.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Arms `action` to fire on the `nth` hit (1-based) of `label`.
    /// One-shot: the plan is consumed when it fires. No-op when
    /// disabled.
    pub fn arm(&self, label: &str, nth: u64, action: FailAction) {
        if let Some(inner) = &self.inner {
            let mut g = lock(inner);
            g.plans.insert((label.to_string(), nth.max(1)), action);
        }
    }

    /// Records a hit of `label` and returns the armed action, if any.
    /// Called by every `fsio` primitive.
    pub(crate) fn check(&self, label: &str) -> Option<FailAction> {
        let inner = self.inner.as_ref()?;
        let mut g = lock(inner);
        let n = {
            let e = g.hits.entry(label.to_string()).or_insert(0);
            *e += 1;
            *e
        };
        if n == 1 {
            g.order.push(label.to_string());
        }
        g.plans.remove(&(label.to_string(), n))
    }

    /// Every label hit so far, in first-hit order — the failpoint
    /// catalog a run actually exercised.
    pub fn labels_seen(&self) -> Vec<String> {
        match &self.inner {
            Some(inner) => lock(inner).order.clone(),
            None => Vec::new(),
        }
    }

    /// Number of hits recorded for `label`.
    pub fn hits(&self, label: &str) -> u64 {
        match &self.inner {
            Some(inner) => lock(inner).hits.get(label).copied().unwrap_or(0),
            None => 0,
        }
    }

    /// Clears counters and unfired plans, keeping the registry enabled.
    pub fn reset(&self) {
        if let Some(inner) = &self.inner {
            let mut g = lock(inner);
            *g = Inner::default();
        }
    }
}

/// Failpoint state is plain data; a panicked holder cannot leave it
/// logically inconsistent, so poisoning is safely ignored.
fn lock(m: &Mutex<Inner>) -> std::sync::MutexGuard<'_, Inner> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_is_noop() {
        let fp = Failpoints::disabled();
        fp.arm("x", 1, FailAction::Crash);
        assert_eq!(fp.check("x"), None);
        assert_eq!(fp.hits("x"), 0);
        assert!(fp.labels_seen().is_empty());
    }

    #[test]
    fn fires_on_exact_hit_and_is_consumed() {
        let fp = Failpoints::enabled();
        fp.arm("w", 2, FailAction::Torn);
        assert_eq!(fp.check("w"), None); // hit 1
        assert_eq!(fp.check("w"), Some(FailAction::Torn)); // hit 2
        assert_eq!(fp.check("w"), None); // consumed
        assert_eq!(fp.hits("w"), 3);
    }

    #[test]
    fn records_first_hit_order() {
        let fp = Failpoints::enabled();
        fp.check("b");
        fp.check("a");
        fp.check("b");
        assert_eq!(fp.labels_seen(), vec!["b".to_string(), "a".to_string()]);
    }

    #[test]
    fn clones_share_state() {
        let fp = Failpoints::enabled();
        let other = fp.clone();
        other.arm("z", 1, FailAction::Transient);
        assert_eq!(fp.check("z"), Some(FailAction::Transient));
    }

    #[test]
    fn reset_clears_counters() {
        let fp = Failpoints::enabled();
        fp.check("x");
        fp.reset();
        assert_eq!(fp.hits("x"), 0);
        assert!(fp.labels_seen().is_empty());
    }
}
