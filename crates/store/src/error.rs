//! Typed store errors and the transient-I/O retry policy.

use std::io;
use std::time::Duration;

/// Why a store operation failed. Recovery never panics on bad data —
/// every on-disk defect maps to one of these.
#[derive(Debug)]
pub enum StoreError {
    /// An I/O operation failed. [`StoreError::is_transient`] tells the
    /// loader whether retrying makes sense.
    Io {
        /// What the store was doing (path and operation).
        context: String,
        /// The underlying error.
        source: io::Error,
    },
    /// A generation's data failed checksum, framing, or structural
    /// validation. The generation is quarantined, not served.
    Corrupt {
        /// The offending generation number.
        generation: u64,
        /// What exactly did not hold.
        detail: String,
    },
    /// A generation directory has no committed `MANIFEST` — the writer
    /// crashed mid-save. Quarantined, not served.
    Partial {
        /// The offending generation number.
        generation: u64,
    },
    /// The decoded index failed the `bgi-verify` invariant suite.
    VerifyFailed {
        /// The offending generation number.
        generation: u64,
        /// Total invariant violations reported.
        violations: usize,
    },
    /// The write-ahead log holds a committed record that is internally
    /// inconsistent (e.g. a sequence number going backwards) — not a
    /// torn tail, which replay tolerates, but structural damage.
    WalCorrupt {
        /// What exactly did not hold.
        detail: String,
    },
    /// No complete, verifiable generation exists in the store.
    NoGeneration,
    /// A fault-injection point fired a simulated crash. Only produced
    /// under test harnesses; the on-disk state is exactly what a real
    /// crash at that instant would leave.
    Injected {
        /// The failpoint label that fired.
        label: String,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io { context, source } => write!(f, "I/O error {context}: {source}"),
            StoreError::Corrupt { generation, detail } => {
                write!(f, "generation {generation} is corrupt: {detail}")
            }
            StoreError::Partial { generation } => {
                write!(f, "generation {generation} has no committed manifest")
            }
            StoreError::VerifyFailed {
                generation,
                violations,
            } => write!(
                f,
                "generation {generation} failed index verification with \
                 {violations} invariant violation(s)"
            ),
            StoreError::WalCorrupt { detail } => {
                write!(f, "write-ahead log is corrupt: {detail}")
            }
            StoreError::NoGeneration => write!(f, "no complete generation in store"),
            StoreError::Injected { label } => {
                write!(f, "simulated crash at failpoint {label:?}")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl StoreError {
    /// True for errors worth retrying: transient I/O conditions
    /// (interruptions, contention) as opposed to structural damage.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            StoreError::Io { source, .. }
                if matches!(
                    source.kind(),
                    io::ErrorKind::Interrupted
                        | io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                )
        )
    }
}

/// Capped exponential backoff for transient read errors: attempt `i`
/// (0-based) sleeps `min(base · 2^i, cap)` before retrying.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (0 retries ⇔ `attempts: 1`).
    pub attempts: u32,
    /// Backoff before the first retry.
    pub base: Duration,
    /// Upper bound on any single backoff sleep.
    pub cap: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 4,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(500),
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries.
    pub fn none() -> Self {
        RetryPolicy {
            attempts: 1,
            base: Duration::ZERO,
            cap: Duration::ZERO,
        }
    }

    /// The backoff to sleep after failed attempt `attempt` (0-based).
    pub fn backoff(&self, attempt: u32) -> Duration {
        let factor = 1u32 << attempt.min(16);
        self.base.saturating_mul(factor).min(self.cap)
    }

    /// Runs `op`, retrying transient failures with capped backoff.
    /// Non-transient errors propagate immediately.
    pub fn run<T>(&self, mut op: impl FnMut() -> Result<T, StoreError>) -> Result<T, StoreError> {
        let mut attempt = 0u32;
        loop {
            match op() {
                Ok(v) => return Ok(v),
                Err(e) if e.is_transient() && attempt + 1 < self.attempts.max(1) => {
                    std::thread::sleep(self.backoff(attempt));
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn transient() -> StoreError {
        StoreError::Io {
            context: "test".into(),
            source: io::Error::new(io::ErrorKind::Interrupted, "flaky"),
        }
    }

    #[test]
    fn transient_classification() {
        assert!(transient().is_transient());
        assert!(!StoreError::NoGeneration.is_transient());
        let hard = StoreError::Io {
            context: "test".into(),
            source: io::Error::new(io::ErrorKind::NotFound, "gone"),
        };
        assert!(!hard.is_transient());
    }

    #[test]
    fn backoff_is_capped_exponential() {
        let p = RetryPolicy {
            attempts: 8,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(45),
        };
        assert_eq!(p.backoff(0), Duration::from_millis(10));
        assert_eq!(p.backoff(1), Duration::from_millis(20));
        assert_eq!(p.backoff(2), Duration::from_millis(40));
        assert_eq!(p.backoff(3), Duration::from_millis(45)); // capped
        assert_eq!(p.backoff(12), Duration::from_millis(45));
    }

    #[test]
    fn run_retries_transient_until_budget() {
        let policy = RetryPolicy {
            attempts: 3,
            base: Duration::ZERO,
            cap: Duration::ZERO,
        };
        let mut calls = 0;
        let out: Result<u32, _> = policy.run(|| {
            calls += 1;
            if calls < 3 {
                Err(transient())
            } else {
                Ok(7)
            }
        });
        assert_eq!(out.unwrap(), 7);
        assert_eq!(calls, 3);

        let mut calls = 0;
        let out: Result<u32, _> = policy.run(|| {
            calls += 1;
            Err(transient())
        });
        assert!(out.is_err());
        assert_eq!(calls, 3); // attempts exhausted

        let mut calls = 0;
        let out: Result<u32, _> = policy.run(|| {
            calls += 1;
            Err(StoreError::NoGeneration)
        });
        assert!(matches!(out, Err(StoreError::NoGeneration)));
        assert_eq!(calls, 1); // non-transient: no retry
    }
}
