//! Crash-safe on-disk persistence for the BiG-index.
//!
//! Building the hierarchy (Gen/Bisim layers, configurations `𝒞`,
//! `Bisim⁻¹` tables) plus the per-layer BANKS/BLINKS/r-clique indexes
//! is the dominant cost at massive-graph scale, so a serving process
//! must be able to restart without recomputing any of it. This crate
//! stores the full [`IndexBundle`] in *generation* directories with a
//! write protocol under which a crash at any instant leaves either the
//! previous generation or the new one on disk — never a torn index:
//!
//! 1. every data file is written to `<name>.tmp`, fsynced, and
//!    atomically renamed into place;
//! 2. the `MANIFEST` — the generation's root of trust, listing every
//!    data file with its length and checksum — is written the same way,
//!    **last**; a generation without a committed manifest does not
//!    exist as far as recovery is concerned;
//! 3. the generation directory is fsynced so the renames are durable.
//!
//! Recovery ([`Store::load_latest`]) scans generations newest-first,
//! quarantines partial or corrupt ones with typed errors (never a
//! panic), re-derives the index from the first complete generation, and
//! gates it behind `bgi_verify::check_index` before returning it.
//!
//! All I/O is threaded through a deterministic fault-injection registry
//! ([`Failpoints`]) so tests can fire a transient error, a torn write,
//! or a simulated crash at every labeled point and assert the
//! old-or-new invariant exhaustively (see `tests/crash_matrix.rs`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bundle;
pub mod codec;
pub mod error;
pub mod failpoint;
pub mod fsio;
pub mod group;
pub mod store;
pub mod wal;

pub use bundle::{build_layer_indexes, IndexBundle};
pub use error::{RetryPolicy, StoreError};
pub use failpoint::{FailAction, Failpoints};
pub use group::CommitQueue;
pub use store::Store;
pub use wal::{GraphUpdate, UpdateBatch, Wal};
