//! Filesystem primitives with fault injection.
//!
//! Every operation the store performs on disk lives here, takes a
//! [`Failpoints`] registry plus a label, and translates armed actions
//! into the corresponding failure: `Transient` becomes a retryable
//! `ErrorKind::Interrupted`, `Torn` writes a prefix of the buffer and
//! dies, `Crash` dies before the operation. "Dying" means returning
//! [`StoreError::Injected`] with *no cleanup* — the caller propagates
//! it straight out, so the on-disk state is exactly what a real crash
//! at that instant would leave.
//!
//! Failpoint labels (the catalog `tests/crash_matrix.rs` enumerates):
//!
//! | label                  | operation                              |
//! |------------------------|----------------------------------------|
//! | `save.create_dir`      | create the new generation directory    |
//! | `save.write_file`      | write a data file's `.tmp`             |
//! | `save.fsync_file`      | fsync a data file's `.tmp`             |
//! | `save.rename_file`     | rename `.tmp` into place               |
//! | `save.write_manifest`  | write `MANIFEST.tmp`                   |
//! | `save.fsync_manifest`  | fsync `MANIFEST.tmp`                   |
//! | `save.rename_manifest` | rename `MANIFEST.tmp` (the commit)     |
//! | `save.fsync_dir`       | fsync the generation directory         |
//! | `load.read_manifest`   | read a generation's `MANIFEST`         |
//! | `load.read_file`       | read a data file                       |
//! | `wal.read`             | read `wal.log` during recovery         |
//! | `wal.append`           | append a record to `wal.log`           |
//! | `wal.fsync`            | fsync `wal.log` (the commit point)     |
//! | `wal.group_append`     | append a group-commit image            |
//! | `wal.group_fsync`      | fsync a group commit (commit point)    |
//! | `wal.truncate_write`   | write the truncated log's `.tmp`       |
//! | `wal.truncate_fsync`   | fsync the truncated log's `.tmp`       |
//! | `wal.truncate_rename`  | rename the truncated log into place    |
//! | `wal.truncate_fsync_dir` | fsync the store root after the rename |
//!
//! The `wal.*` labels live in `crate::wal`; they route through the same
//! registry and the same crash matrix as the `save.*`/`load.*` sites.

use crate::error::StoreError;
use crate::failpoint::{FailAction, Failpoints};
use std::fs;
use std::io::{self, Write};
use std::path::Path;

pub(crate) fn io_err(context: &str, path: &Path, source: io::Error) -> StoreError {
    StoreError::Io {
        context: format!("{context} {}", path.display()),
        source,
    }
}

pub(crate) fn injected(label: &str) -> StoreError {
    StoreError::Injected {
        label: label.to_string(),
    }
}

pub(crate) fn transient(context: &str, path: &Path) -> StoreError {
    io_err(
        context,
        path,
        io::Error::new(io::ErrorKind::Interrupted, "injected transient I/O error"),
    )
}

/// Creates a directory (and missing parents). Label: `save.create_dir`.
pub fn create_dir(fp: &Failpoints, label: &str, path: &Path) -> Result<(), StoreError> {
    match fp.check(label) {
        Some(FailAction::Transient) => return Err(transient("creating", path)),
        Some(FailAction::Torn | FailAction::Crash) => return Err(injected(label)),
        None => {}
    }
    fs::create_dir_all(path).map_err(|e| io_err("creating", path, e))
}

/// Writes `bytes` to `<name>.tmp` in `dir`, fsyncs, and renames to
/// `<name>`. The three steps carry `write_label`, `fsync_label`, and
/// `rename_label` respectively; a `Torn` action on the write step
/// leaves a half-written `.tmp` behind, exactly like a crash mid-write.
pub fn write_atomic(
    fp: &Failpoints,
    dir: &Path,
    name: &str,
    bytes: &[u8],
    write_label: &str,
    fsync_label: &str,
    rename_label: &str,
) -> Result<(), StoreError> {
    let tmp = dir.join(format!("{name}.tmp"));
    let fin = dir.join(name);

    match fp.check(write_label) {
        Some(FailAction::Transient) => return Err(transient("writing", &tmp)),
        Some(FailAction::Crash) => return Err(injected(write_label)),
        Some(FailAction::Torn) => {
            // Persist a strict prefix, then die mid-write.
            let torn = &bytes[..bytes.len() / 2];
            let mut f = fs::File::create(&tmp).map_err(|e| io_err("creating", &tmp, e))?;
            f.write_all(torn).map_err(|e| io_err("writing", &tmp, e))?;
            let _ = f.sync_all();
            return Err(injected(write_label));
        }
        None => {}
    }
    let mut f = fs::File::create(&tmp).map_err(|e| io_err("creating", &tmp, e))?;
    f.write_all(bytes).map_err(|e| io_err("writing", &tmp, e))?;

    match fp.check(fsync_label) {
        Some(FailAction::Transient) => return Err(transient("fsyncing", &tmp)),
        Some(FailAction::Torn | FailAction::Crash) => return Err(injected(fsync_label)),
        None => {}
    }
    f.sync_all().map_err(|e| io_err("fsyncing", &tmp, e))?;
    drop(f);

    match fp.check(rename_label) {
        Some(FailAction::Transient) => return Err(transient("renaming", &tmp)),
        Some(FailAction::Torn | FailAction::Crash) => return Err(injected(rename_label)),
        None => {}
    }
    fs::rename(&tmp, &fin).map_err(|e| io_err("renaming", &tmp, e))
}

/// Fsyncs a directory so renames inside it are durable.
/// Label: `save.fsync_dir`.
pub fn fsync_dir(fp: &Failpoints, label: &str, dir: &Path) -> Result<(), StoreError> {
    match fp.check(label) {
        Some(FailAction::Transient) => return Err(transient("fsyncing", dir)),
        Some(FailAction::Torn | FailAction::Crash) => return Err(injected(label)),
        None => {}
    }
    let f = fs::File::open(dir).map_err(|e| io_err("opening", dir, e))?;
    f.sync_all().map_err(|e| io_err("fsyncing", dir, e))
}

/// Reads a whole file. Labels: `load.read_manifest`, `load.read_file`.
pub fn read_file(fp: &Failpoints, label: &str, path: &Path) -> Result<Vec<u8>, StoreError> {
    match fp.check(label) {
        Some(FailAction::Transient) => return Err(transient("reading", path)),
        Some(FailAction::Torn | FailAction::Crash) => return Err(injected(label)),
        None => {}
    }
    fs::read(path).map_err(|e| io_err("reading", path, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("bgi-store-fsio-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn write_atomic_roundtrip() {
        let d = tmpdir("rt");
        let fp = Failpoints::disabled();
        write_atomic(&fp, &d, "a.bin", b"hello", "w", "s", "r").unwrap();
        assert_eq!(fs::read(d.join("a.bin")).unwrap(), b"hello");
        assert!(!d.join("a.bin.tmp").exists());
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn torn_write_leaves_partial_tmp_only() {
        let d = tmpdir("torn");
        let fp = Failpoints::enabled();
        fp.arm("w", 1, FailAction::Torn);
        let err = write_atomic(&fp, &d, "a.bin", b"0123456789", "w", "s", "r").unwrap_err();
        assert!(matches!(err, StoreError::Injected { .. }));
        assert!(!d.join("a.bin").exists());
        assert_eq!(fs::read(d.join("a.bin.tmp")).unwrap(), b"01234");
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn crash_before_rename_leaves_full_tmp() {
        let d = tmpdir("crash");
        let fp = Failpoints::enabled();
        fp.arm("r", 1, FailAction::Crash);
        let err = write_atomic(&fp, &d, "a.bin", b"abc", "w", "s", "r").unwrap_err();
        assert!(matches!(err, StoreError::Injected { .. }));
        assert!(!d.join("a.bin").exists());
        assert_eq!(fs::read(d.join("a.bin.tmp")).unwrap(), b"abc");
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn transient_is_retryable() {
        let d = tmpdir("trans");
        let fp = Failpoints::enabled();
        fp.arm("load.read_file", 1, FailAction::Transient);
        fs::write(d.join("x.bin"), b"ok").unwrap();
        let err = read_file(&fp, "load.read_file", &d.join("x.bin")).unwrap_err();
        assert!(err.is_transient());
        // Second attempt (plan consumed) succeeds.
        assert_eq!(
            read_file(&fp, "load.read_file", &d.join("x.bin")).unwrap(),
            b"ok"
        );
        let _ = fs::remove_dir_all(&d);
    }
}
