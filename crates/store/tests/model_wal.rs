//! Model-checked concurrency tests for the WAL append/truncate path
//! and the group-commit queue.
//!
//! The WAL itself is single-writer (`&mut self`), so concurrent use
//! goes through a mutex — these tests drive that pattern through the
//! `bgi-check` facade and explore the interleavings. Every run gets a
//! fresh temp directory built *inside* the closure, so schedules never
//! share on-disk state.
//!
//! The commit-queue tests model leader failure through the *error*
//! path (an armed `wal.group_fsync` failpoint): under simulation a
//! panic aborts the whole schedule, so the panic-unwinding
//! `DeathGuard` path is covered by plain-thread tests in
//! `bgi_store::group` instead, and the model checker's job here is the
//! protocol itself — every caller returns under every interleaving
//! (follower timeouts may fire at any schedule point), failed leaders
//! hand over, and nothing durable is lost.

use bgi_check::sync::{thread, Mutex, PoisonError};
use bgi_check::{model, Config};
use bgi_store::{CommitQueue, FailAction, Failpoints, GraphUpdate, Wal};
use std::sync::Arc;

mod common;
use common::TempDir;

fn lock<T>(m: &Mutex<T>) -> bgi_check::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

fn edge(src: u32, dst: u32) -> GraphUpdate {
    GraphUpdate::InsertEdge { src, dst }
}

/// Two appenders interleaved arbitrarily: every batch survives a
/// reopen, sequence numbers stay strictly increasing, and each
/// thread's own batches land in the order it wrote them.
#[test]
fn concurrent_appenders_preserve_order_and_seqs() {
    let report = model(Config::exhaustive(2), || {
        let dir = TempDir::new("model-append");
        let (wal, recovered) = Wal::open(dir.path(), Failpoints::disabled()).unwrap();
        assert!(recovered.is_empty());
        let wal = Arc::new(Mutex::new(wal));

        let handles: Vec<_> = (0..2u32)
            .map(|t| {
                let wal = Arc::clone(&wal);
                thread::spawn(move || {
                    for i in 0..2u32 {
                        lock(&wal).append(&[edge(100 * (t + 1), i)]).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        drop(wal);

        let (_, batches) = Wal::open(dir.path(), Failpoints::disabled()).unwrap();
        assert_eq!(batches.len(), 4, "an append was lost");
        for pair in batches.windows(2) {
            assert!(pair[0].seq < pair[1].seq, "seqs not strictly increasing");
        }
        for t in 1..=2u32 {
            let dsts: Vec<u32> = batches
                .iter()
                .filter_map(|b| match b.updates[..] {
                    [GraphUpdate::InsertEdge { src, dst }] if src == 100 * t => Some(dst),
                    _ => None,
                })
                .collect();
            assert_eq!(dsts, vec![0, 1], "thread {t}'s batches out of order");
        }
    });
    assert!(report.schedules > 1, "exhaustive run explored one schedule");
}

/// An appender racing `truncate_through`: truncation drops exactly the
/// prefix it names, never in-flight batches with later seqs — so the
/// reopened log holds the appender's two batches, in order, under
/// every interleaving.
#[test]
fn truncate_races_append_without_losing_later_batches() {
    let report = model(Config::exhaustive(2), || {
        let dir = TempDir::new("model-truncate");
        let (mut wal, _) = Wal::open(dir.path(), Failpoints::disabled()).unwrap();
        let seq1 = wal.append(&[edge(1, 2)]).unwrap();
        let wal = Arc::new(Mutex::new(wal));

        let appender = {
            let wal = Arc::clone(&wal);
            thread::spawn(move || {
                lock(&wal).append(&[edge(3, 4)]).unwrap();
                lock(&wal).append(&[edge(5, 6)]).unwrap();
            })
        };
        let truncator = {
            let wal = Arc::clone(&wal);
            thread::spawn(move || {
                lock(&wal).truncate_through(seq1).unwrap();
            })
        };
        appender.join().unwrap();
        truncator.join().unwrap();
        drop(wal);

        let (_, batches) = Wal::open(dir.path(), Failpoints::disabled()).unwrap();
        let payloads: Vec<_> = batches.iter().map(|b| b.updates.clone()).collect();
        assert_eq!(
            payloads,
            vec![vec![edge(3, 4)], vec![edge(5, 6)]],
            "truncation must drop exactly the seq-1 prefix"
        );
        assert!(batches[0].seq > seq1);
    });
    assert!(report.schedules > 1, "exhaustive run explored one schedule");
}

/// A group append racing `truncate_through`: whether the group image
/// lands before or after the truncation rewrite, the reopened log
/// holds exactly the group's batches in order with seqs past the
/// truncated prefix.
#[test]
fn group_append_races_truncate_without_losing_batches() {
    let report = model(Config::exhaustive(2), || {
        let dir = TempDir::new("model-group-truncate");
        let (mut wal, _) = Wal::open(dir.path(), Failpoints::disabled()).unwrap();
        let seq1 = wal.append(&[edge(1, 2)]).unwrap();
        let wal = Arc::new(Mutex::new(wal));

        let appender = {
            let wal = Arc::clone(&wal);
            thread::spawn(move || {
                lock(&wal)
                    .append_group(&[vec![edge(3, 4)], vec![edge(5, 6)]])
                    .unwrap();
            })
        };
        let truncator = {
            let wal = Arc::clone(&wal);
            thread::spawn(move || {
                lock(&wal).truncate_through(seq1).unwrap();
            })
        };
        appender.join().unwrap();
        truncator.join().unwrap();
        drop(wal);

        let (_, batches) = Wal::open(dir.path(), Failpoints::disabled()).unwrap();
        let payloads: Vec<_> = batches.iter().map(|b| b.updates.clone()).collect();
        assert_eq!(
            payloads,
            vec![vec![edge(3, 4)], vec![edge(5, 6)]],
            "truncation must drop exactly the seq-1 prefix, never the group"
        );
        assert!(
            batches[0].seq > seq1,
            "group seqs must stay past the prefix"
        );
    });
    assert!(report.schedules > 1, "exhaustive run explored one schedule");
}

/// The commit queue alone, under the model checker: two callers push
/// one item each through [`CommitQueue::commit`]. Under simulation the
/// follower's `wait_timeout` can fire at any schedule point, so this
/// explores both coalesced groups and timeout-driven takeovers. Every
/// caller must get its own result back, every item must be processed
/// exactly once, and group boundaries must partition the items.
#[test]
fn commit_queue_callers_always_get_results_under_any_interleaving() {
    let report = model(Config::exhaustive(2), || {
        let queue = Arc::new(CommitQueue::<u32, u32>::new());
        let groups = Arc::new(Mutex::new(Vec::<Vec<u32>>::new()));

        let handles: Vec<_> = (1..=2u32)
            .map(|item| {
                let queue = Arc::clone(&queue);
                let groups = Arc::clone(&groups);
                thread::spawn(move || {
                    queue.commit(item, move |items: Vec<u32>| {
                        lock(&groups).push(items.clone());
                        items.iter().map(|x| x * 10).collect()
                    })
                })
            })
            .collect();
        let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();

        for (i, r) in results.iter().enumerate() {
            let item = i as u32 + 1;
            assert_eq!(
                *r,
                Some(item * 10),
                "caller {item} must receive its own result"
            );
        }
        let mut seen: Vec<u32> = lock(&groups).iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![1, 2], "items must be processed exactly once");
    });
    assert!(report.schedules > 1, "exhaustive run explored one schedule");
}

/// Leader failure and takeover, modeled through the error path: the
/// first `wal.group_fsync` is armed `Transient`, so whichever caller
/// leads the first group commit fails and must hand leadership back
/// (under simulation a panicking leader would abort the whole
/// schedule, so the panic path is covered by the plain-thread
/// `DeathGuard` tests in `bgi_store::group`). Under every
/// interleaving: no caller hangs, every `Ok` seq is durable on reopen,
/// and nothing but the two submitted batches ever reaches the log.
#[test]
fn failed_group_leader_hands_over_and_commits_stay_durable() {
    let report = model(Config::exhaustive(2), || {
        let dir = TempDir::new("model-group-leader");
        let fp = Failpoints::enabled();
        fp.arm("wal.group_fsync", 1, FailAction::Transient);
        let (wal, _) = Wal::open(dir.path(), fp).unwrap();
        let wal = Arc::new(Mutex::new(wal));
        let queue = Arc::new(CommitQueue::<Vec<GraphUpdate>, Result<u64, String>>::new());

        let handles: Vec<_> = (1..=2u32)
            .map(|t| {
                let wal = Arc::clone(&wal);
                let queue = Arc::clone(&queue);
                thread::spawn(move || {
                    let batch = vec![edge(100 * t, t)];
                    queue.commit(batch, move |batches: Vec<Vec<GraphUpdate>>| {
                        let mut w = lock(&wal);
                        match w.append_group(&batches) {
                            Ok(seqs) => seqs.into_iter().map(Ok).collect(),
                            Err(e) => batches.iter().map(|_| Err(e.to_string())).collect(),
                        }
                    })
                })
            })
            .collect();
        let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        drop(queue);
        drop(wal);

        // No sim thread panics, so the queue never reports a dead
        // leader: every caller gets a Some (deadlock-freedom is the
        // takeover property — a failed leader must release followers).
        let mut committed = Vec::new();
        for (i, r) in results.iter().enumerate() {
            let t = i as u32 + 1;
            match r {
                Some(Ok(seq)) => committed.push((*seq, vec![edge(100 * t, t)])),
                Some(Err(_)) => {}
                None => panic!("caller {t} saw a dead leader without any panic"),
            }
        }

        let (_, batches) = Wal::open(dir.path(), Failpoints::disabled()).unwrap();
        for pair in batches.windows(2) {
            assert!(pair[0].seq < pair[1].seq, "seqs not strictly increasing");
        }
        // Every successful commit is durable with its exact payload...
        for (seq, updates) in &committed {
            assert!(
                batches
                    .iter()
                    .any(|b| b.seq == *seq && b.updates == *updates),
                "seq {seq} was acknowledged Ok but is missing after reopen"
            );
        }
        // ...and the log never contains anything but submitted batches
        // (a failed group may leave an unsynced-but-readable residue,
        // which idempotent replay tolerates — but never invents data).
        for b in &batches {
            assert!(
                (1..=2u32).any(|t| b.updates == vec![edge(100 * t, t)]),
                "replayed batch {:?} was never submitted",
                b.updates
            );
        }
    });
    assert!(report.schedules > 1, "exhaustive run explored one schedule");
}
