//! Model-checked concurrency tests for the WAL append/truncate path.
//!
//! The WAL itself is single-writer (`&mut self`), so concurrent use
//! goes through a mutex — these tests drive that pattern through the
//! `bgi-check` facade and explore the interleavings. Every run gets a
//! fresh temp directory built *inside* the closure, so schedules never
//! share on-disk state.

use bgi_check::sync::{thread, Mutex, PoisonError};
use bgi_check::{model, Config};
use bgi_store::{Failpoints, GraphUpdate, Wal};
use std::sync::Arc;

mod common;
use common::TempDir;

fn lock<T>(m: &Mutex<T>) -> bgi_check::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

fn edge(src: u32, dst: u32) -> GraphUpdate {
    GraphUpdate::InsertEdge { src, dst }
}

/// Two appenders interleaved arbitrarily: every batch survives a
/// reopen, sequence numbers stay strictly increasing, and each
/// thread's own batches land in the order it wrote them.
#[test]
fn concurrent_appenders_preserve_order_and_seqs() {
    let report = model(Config::exhaustive(2), || {
        let dir = TempDir::new("model-append");
        let (wal, recovered) = Wal::open(dir.path(), Failpoints::disabled()).unwrap();
        assert!(recovered.is_empty());
        let wal = Arc::new(Mutex::new(wal));

        let handles: Vec<_> = (0..2u32)
            .map(|t| {
                let wal = Arc::clone(&wal);
                thread::spawn(move || {
                    for i in 0..2u32 {
                        lock(&wal).append(&[edge(100 * (t + 1), i)]).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        drop(wal);

        let (_, batches) = Wal::open(dir.path(), Failpoints::disabled()).unwrap();
        assert_eq!(batches.len(), 4, "an append was lost");
        for pair in batches.windows(2) {
            assert!(pair[0].seq < pair[1].seq, "seqs not strictly increasing");
        }
        for t in 1..=2u32 {
            let dsts: Vec<u32> = batches
                .iter()
                .filter_map(|b| match b.updates[..] {
                    [GraphUpdate::InsertEdge { src, dst }] if src == 100 * t => Some(dst),
                    _ => None,
                })
                .collect();
            assert_eq!(dsts, vec![0, 1], "thread {t}'s batches out of order");
        }
    });
    assert!(report.schedules > 1, "exhaustive run explored one schedule");
}

/// An appender racing `truncate_through`: truncation drops exactly the
/// prefix it names, never in-flight batches with later seqs — so the
/// reopened log holds the appender's two batches, in order, under
/// every interleaving.
#[test]
fn truncate_races_append_without_losing_later_batches() {
    let report = model(Config::exhaustive(2), || {
        let dir = TempDir::new("model-truncate");
        let (mut wal, _) = Wal::open(dir.path(), Failpoints::disabled()).unwrap();
        let seq1 = wal.append(&[edge(1, 2)]).unwrap();
        let wal = Arc::new(Mutex::new(wal));

        let appender = {
            let wal = Arc::clone(&wal);
            thread::spawn(move || {
                lock(&wal).append(&[edge(3, 4)]).unwrap();
                lock(&wal).append(&[edge(5, 6)]).unwrap();
            })
        };
        let truncator = {
            let wal = Arc::clone(&wal);
            thread::spawn(move || {
                lock(&wal).truncate_through(seq1).unwrap();
            })
        };
        appender.join().unwrap();
        truncator.join().unwrap();
        drop(wal);

        let (_, batches) = Wal::open(dir.path(), Failpoints::disabled()).unwrap();
        let payloads: Vec<_> = batches.iter().map(|b| b.updates.clone()).collect();
        assert_eq!(
            payloads,
            vec![vec![edge(3, 4)], vec![edge(5, 6)]],
            "truncation must drop exactly the seq-1 prefix"
        );
        assert!(batches[0].seq > seq1);
    });
    assert!(report.schedules > 1, "exhaustive run explored one schedule");
}
