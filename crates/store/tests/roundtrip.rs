//! Round-trip, corruption, and retry behavior of the store: a loaded
//! bundle equals the saved one bit for bit (so serving can skip
//! hierarchy construction entirely), corrupt generations surface as
//! quarantined typed errors, and transient I/O is retried with backoff.

mod common;

use bgi_store::{FailAction, Failpoints, RetryPolicy, Store, StoreError};
use common::{bundle_a, bundle_b, TempDir};
use proptest::prelude::*;
use std::fs;
use std::path::{Path, PathBuf};
use std::time::Duration;

#[test]
fn save_load_roundtrip_is_equal() {
    let a = bundle_a();
    let dir = TempDir::new("rt");
    let store = Store::open(dir.path()).unwrap();
    let generation = store.save(&a).unwrap();
    assert_eq!(generation, 1);
    let (loaded_gen, loaded) = store.load_latest().unwrap();
    assert_eq!(loaded_gen, 1);
    // Exact equality: the hierarchy, every per-layer index, and the
    // parameters — nothing is rebuilt, nothing drifts.
    assert_eq!(loaded, a);
    assert!(loaded.index.verify().is_clean());
}

#[test]
fn newest_complete_generation_wins() {
    let a = bundle_a();
    let b = bundle_b();
    let dir = TempDir::new("newest");
    let store = Store::open(dir.path()).unwrap();
    store.save(&a).unwrap();
    store.save(&b).unwrap();
    assert_eq!(store.generations().unwrap(), vec![1, 2]);
    let (generation, loaded) = store.load_latest().unwrap();
    assert_eq!(generation, 2);
    assert_eq!(loaded, b);
}

#[test]
fn empty_store_is_typed_error() {
    let dir = TempDir::new("empty");
    let store = Store::open(dir.path()).unwrap();
    assert!(matches!(store.load_latest(), Err(StoreError::NoGeneration)));
}

/// All data files of a generation, for corruption targeting.
fn generation_files(root: &Path, generation: u64) -> Vec<PathBuf> {
    let dir = root.join(format!("gen-{generation:08}"));
    let mut files: Vec<PathBuf> = fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_file())
        .collect();
    files.sort();
    files
}

#[test]
fn corrupt_newest_falls_back_to_older() {
    let a = bundle_a();
    let b = bundle_b();
    let dir = TempDir::new("fallback");
    let store = Store::open(dir.path()).unwrap();
    store.save(&a).unwrap();
    store.save(&b).unwrap();
    // Flip one byte in one data file of generation 2.
    let victim = generation_files(dir.path(), 2)
        .into_iter()
        .find(|p| p.file_name().is_some_and(|n| n == "index.bin"))
        .unwrap();
    let mut bytes = fs::read(&victim).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    fs::write(&victim, &bytes).unwrap();

    let (generation, loaded) = store.load_latest().unwrap();
    assert_eq!(generation, 1);
    assert_eq!(loaded, a);
    assert_eq!(store.quarantined().len(), 1);
}

#[test]
fn corrupt_only_generation_is_typed_error() {
    let a = bundle_a();
    let dir = TempDir::new("corrupt-only");
    let store = Store::open(dir.path()).unwrap();
    store.save(&a).unwrap();
    let victim = generation_files(dir.path(), 1).pop().unwrap();
    let bytes = fs::read(&victim).unwrap();
    fs::write(&victim, &bytes[..bytes.len() / 2]).unwrap(); // truncate
    match store.load_latest() {
        Err(StoreError::Corrupt { generation, .. }) => assert_eq!(generation, 1),
        other => panic!("expected Corrupt, got {other:?}"),
    }
    assert_eq!(store.quarantined().len(), 1);
}

#[test]
fn missing_manifest_file_is_corrupt_not_panic() {
    let a = bundle_a();
    let dir = TempDir::new("missing-file");
    let store = Store::open(dir.path()).unwrap();
    store.save(&a).unwrap();
    // Delete a data file the manifest still lists.
    let victim = generation_files(dir.path(), 1)
        .into_iter()
        .find(|p| p.file_name().is_some_and(|n| n == "banks-000.bin"))
        .unwrap();
    fs::remove_file(&victim).unwrap();
    // The read error is NotFound — not transient, and the generation
    // is provably incomplete. It must not be served.
    assert!(store.load_latest().is_err());
}

#[test]
fn transient_read_errors_are_retried_with_backoff() {
    let a = bundle_a();
    let dir = TempDir::new("retry");
    let fp = Failpoints::enabled();
    let policy = RetryPolicy {
        attempts: 3,
        base: Duration::from_millis(1),
        cap: Duration::from_millis(2),
    };
    let store = Store::open_with(dir.path(), fp.clone(), policy).unwrap();
    store.save(&a).unwrap();
    fp.reset();

    // Two transient failures fit inside three attempts.
    fp.arm("load.read_manifest", 1, FailAction::Transient);
    fp.arm("load.read_manifest", 2, FailAction::Transient);
    let (generation, loaded) = store.load_latest().unwrap();
    assert_eq!(generation, 1);
    assert_eq!(loaded, a);
    assert_eq!(fp.hits("load.read_manifest"), 3);

    // A persistent transient fault exhausts the budget and surfaces as
    // an I/O error — and does NOT quarantine the (healthy) generation.
    fp.reset();
    for nth in 1..=3 {
        fp.arm("load.read_manifest", nth, FailAction::Transient);
    }
    match store.load_latest() {
        Err(e @ StoreError::Io { .. }) => assert!(e.is_transient()),
        other => panic!("expected transient Io, got {other:?}"),
    }
    assert!(store.quarantined().is_empty());
    assert_eq!(store.generations().unwrap(), vec![1]);
}

#[test]
fn transient_data_file_reads_are_retried_too() {
    let a = bundle_a();
    let dir = TempDir::new("retry-file");
    let fp = Failpoints::enabled();
    let policy = RetryPolicy {
        attempts: 3,
        base: Duration::from_millis(1),
        cap: Duration::from_millis(2),
    };
    let store = Store::open_with(dir.path(), fp.clone(), policy).unwrap();
    store.save(&a).unwrap();
    fp.reset();

    // A single transient fault on a data-file read must be absorbed by
    // the retry budget, not quarantine the generation.
    fp.arm("load.read_file", 1, FailAction::Transient);
    let (generation, loaded) = store.load_latest().unwrap();
    assert_eq!(generation, 1);
    assert_eq!(loaded, a);
    assert!(fp.hits("load.read_file") > 1);
    assert!(store.quarantined().is_empty());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Arbitrary single-byte corruption anywhere in the newest
    /// generation: recovery either falls back to the old generation or
    /// (if the flip hit slack the checksum does not cover — impossible
    /// with this codec, but the property must not assume it) returns
    /// the new one intact. It never panics and never returns a mix.
    #[test]
    fn random_byte_flip_never_serves_torn_data(file_pick in 0usize..64, byte_pick in 0usize..8192, bit in 0u8..8) {
        let a = bundle_a();
        let b = bundle_b();
        let dir = TempDir::new("prop-flip");
        let store = Store::open(dir.path()).unwrap();
        store.save(&a).unwrap();
        store.save(&b).unwrap();
        let files = generation_files(dir.path(), 2);
        let victim = &files[file_pick % files.len()];
        let mut bytes = fs::read(victim).unwrap();
        let idx = byte_pick % bytes.len();
        bytes[idx] ^= 1 << bit;
        fs::write(victim, &bytes).unwrap();

        let (generation, loaded) = store.load_latest().unwrap();
        prop_assert!(generation == 1 || generation == 2);
        if generation == 1 {
            prop_assert_eq!(&loaded, &a);
        } else {
            prop_assert_eq!(&loaded, &b);
        }
        prop_assert!(loaded.index.verify().is_clean());
    }
}
