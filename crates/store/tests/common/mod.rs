//! Shared fixtures for store integration tests: two small but
//! non-trivial bundles (distinct graphs, same ontology) and unique
//! temp directories.

// Each integration-test binary compiles its own copy of this module
// and none uses every fixture.
#![allow(dead_code)]

use bgi_graph::{GraphBuilder, LabelId, OntologyBuilder, VId};
use bgi_search::blinks::BlinksParams;
use bgi_search::RClique;
use bgi_store::IndexBundle;
use big_index::{BiGIndex, BuildParams, EvalOptions};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};

fn build_bundle(edge_stride: u32) -> IndexBundle {
    let mut ob = OntologyBuilder::new(6);
    ob.add_subtype(LabelId(0), LabelId(1));
    ob.add_subtype(LabelId(0), LabelId(2));
    ob.add_subtype(LabelId(3), LabelId(4));
    ob.add_subtype(LabelId(3), LabelId(5));
    let ontology = ob.build().unwrap();
    let mut b = GraphBuilder::new();
    for i in 0..24u32 {
        b.add_vertex(LabelId(1 + (i % 2)));
    }
    for i in 0..24u32 {
        b.add_vertex(LabelId(4 + (i % 2)));
    }
    for i in 0..47u32 {
        b.add_edge(VId(i), VId(i + 1));
        b.add_edge(VId(i + 1), VId(i % edge_stride));
    }
    let g = b.build();
    let index = BiGIndex::build(g, ontology, &BuildParams::default());
    IndexBundle::build(
        index,
        BlinksParams {
            block_size: 8,
            prune_dist: 4,
        },
        RClique {
            radius: 3,
            max_index_bytes: None,
        },
        EvalOptions::default(),
    )
}

/// The "old" generation's content.
pub fn bundle_a() -> IndexBundle {
    build_bundle(7)
}

/// The "new" generation's content — a different graph, so the two
/// bundles compare unequal.
pub fn bundle_b() -> IndexBundle {
    build_bundle(5)
}

static DIR_SEQ: AtomicU32 = AtomicU32::new(0);

/// A unique, empty temp directory; removed by [`TempDir::drop`].
pub struct TempDir(pub PathBuf);

impl TempDir {
    pub fn new(tag: &str) -> Self {
        let seq = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
        let d =
            std::env::temp_dir().join(format!("bgi-store-test-{tag}-{}-{seq}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        TempDir(d)
    }

    pub fn path(&self) -> &PathBuf {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}
