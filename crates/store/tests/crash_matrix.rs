//! The crash-matrix property: for every labeled failpoint in the save
//! path and every hit of it, killing the write exactly there and
//! reopening the store yields a verified bundle equal to either the
//! pre-write generation or the post-write one — never a torn index —
//! with the partial generation quarantined, not served and not
//! panicking.

mod common;

use bgi_store::{FailAction, Failpoints, IndexBundle, RetryPolicy, Store, StoreError};
use common::{bundle_a, bundle_b, TempDir};

/// Every label the save path can hit (the `fsio` catalog).
const WRITE_LABELS: &[&str] = &[
    "save.create_dir",
    "save.write_file",
    "save.fsync_file",
    "save.rename_file",
    "save.write_manifest",
    "save.fsync_manifest",
    "save.rename_manifest",
    "save.fsync_dir",
];

/// Runs one reference save of `next` on top of `prev` and returns each
/// write label's hit count — the coordinates the matrix enumerates.
fn reference_hits(prev: &IndexBundle, next: &IndexBundle) -> Vec<(String, u64)> {
    let dir = TempDir::new("ref");
    let fp = Failpoints::enabled();
    let store = Store::open_with(dir.path(), fp.clone(), RetryPolicy::none()).unwrap();
    store.save(prev).unwrap();
    fp.reset();
    store.save(next).unwrap();
    let seen = fp.labels_seen();
    for label in WRITE_LABELS {
        assert!(
            seen.iter().any(|s| s == label),
            "failpoint {label} never hit by a full save — catalog out of date"
        );
    }
    seen.into_iter().map(|l| (l.clone(), fp.hits(&l))).collect()
}

/// Kills the save of `next` at `(label, nth)` with `action`, then
/// reopens and asserts the old-or-new invariant.
fn kill_and_recover(
    prev: &IndexBundle,
    next: &IndexBundle,
    label: &str,
    nth: u64,
    action: FailAction,
) {
    let dir = TempDir::new("kill");
    let fp = Failpoints::enabled();
    let store = Store::open_with(dir.path(), fp.clone(), RetryPolicy::none()).unwrap();
    let gen_a = store.save(prev).unwrap();
    fp.reset();
    fp.arm(label, nth, action);
    let outcome = store.save(next);
    drop(store);

    // Reopen as a fresh process would: no failpoints, default retries.
    let store = Store::open(dir.path()).unwrap();
    let (generation, loaded) = store
        .load_latest()
        .unwrap_or_else(|e| panic!("recovery after {action:?} at {label}#{nth} failed: {e}"));
    if outcome.is_ok() {
        // The armed point was never reached before the save finished —
        // only possible for plans beyond the last hit, which the matrix
        // does not generate.
        assert_eq!(generation, gen_a + 1);
        assert_eq!(&loaded, next, "completed save must read back as new");
        return;
    }
    if generation == gen_a {
        assert_eq!(
            &loaded, prev,
            "{action:?} at {label}#{nth}: old generation torn"
        );
    } else {
        assert_eq!(
            &loaded, next,
            "{action:?} at {label}#{nth}: new generation torn"
        );
    }
    assert!(loaded.index.verify().is_clean());
}

#[test]
fn crash_matrix_old_or_new_never_torn() {
    let a = bundle_a();
    let b = bundle_b();
    let hits = reference_hits(&a, &b);
    let mut points = 0u32;
    for (label, count) in &hits {
        for nth in 1..=*count {
            kill_and_recover(&a, &b, label, nth, FailAction::Crash);
            points += 1;
        }
    }
    assert!(
        points >= WRITE_LABELS.len() as u32,
        "matrix fired only {points} crash points"
    );
}

#[test]
fn torn_write_matrix_old_or_new_never_torn() {
    let a = bundle_a();
    let b = bundle_b();
    for (label, count) in reference_hits(&a, &b) {
        // Torn actions only make sense where bytes are written.
        if label != "save.write_file" && label != "save.write_manifest" {
            continue;
        }
        for nth in 1..=count {
            kill_and_recover(&a, &b, &label, nth, FailAction::Torn);
        }
    }
}

#[test]
fn crash_before_first_manifest_leaves_empty_store() {
    // Kill the *first* save before its manifest commit: recovery has
    // nothing to serve and must say so with a typed error.
    let dir = TempDir::new("first");
    let fp = Failpoints::enabled();
    let store = Store::open_with(dir.path(), fp.clone(), RetryPolicy::none()).unwrap();
    fp.arm("save.rename_manifest", 1, FailAction::Crash);
    assert!(store.save(&bundle_a()).is_err());
    drop(store);

    let store = Store::open(dir.path()).unwrap();
    match store.load_latest() {
        Err(StoreError::Partial { generation }) => assert_eq!(generation, 1),
        other => panic!("expected Partial, got {other:?}"),
    }
    // The partial generation was quarantined for post-mortem.
    assert_eq!(store.quarantined().len(), 1);
    assert!(store.generations().unwrap().is_empty());
}

#[test]
fn partial_generation_is_quarantined_and_older_served() {
    let a = bundle_a();
    let b = bundle_b();
    let dir = TempDir::new("quarantine");
    let fp = Failpoints::enabled();
    let store = Store::open_with(dir.path(), fp.clone(), RetryPolicy::none()).unwrap();
    store.save(&a).unwrap();
    fp.reset();
    // Die halfway through the new generation's data files.
    fp.arm("save.write_file", 3, FailAction::Torn);
    assert!(store.save(&b).is_err());
    drop(store);

    let store = Store::open(dir.path()).unwrap();
    let (generation, loaded) = store.load_latest().unwrap();
    assert_eq!(generation, 1);
    assert_eq!(loaded, a);
    assert_eq!(store.quarantined().len(), 1);
    // Quarantining freed the dead number; a re-save lands cleanly.
    let next = store.save(&b).unwrap();
    assert_eq!(next, 2);
    let (generation, loaded) = store.load_latest().unwrap();
    assert_eq!(generation, 2);
    assert_eq!(loaded, b);
}
