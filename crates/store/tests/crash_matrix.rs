//! The crash-matrix property: for every labeled failpoint in the save
//! path and every hit of it, killing the write exactly there and
//! reopening the store yields a verified bundle equal to either the
//! pre-write generation or the post-write one — never a torn index —
//! with the partial generation quarantined, not served and not
//! panicking.

mod common;

use bgi_store::{FailAction, Failpoints, IndexBundle, RetryPolicy, Store, StoreError};
use common::{bundle_a, bundle_b, TempDir};

/// Every label the save path can hit (the `fsio` catalog).
const WRITE_LABELS: &[&str] = &[
    "save.create_dir",
    "save.write_file",
    "save.fsync_file",
    "save.rename_file",
    "save.write_manifest",
    "save.fsync_manifest",
    "save.rename_manifest",
    "save.fsync_dir",
];

/// Runs one reference save of `next` on top of `prev` and returns each
/// write label's hit count — the coordinates the matrix enumerates.
fn reference_hits(prev: &IndexBundle, next: &IndexBundle) -> Vec<(String, u64)> {
    let dir = TempDir::new("ref");
    let fp = Failpoints::enabled();
    let store = Store::open_with(dir.path(), fp.clone(), RetryPolicy::none()).unwrap();
    store.save(prev).unwrap();
    fp.reset();
    store.save(next).unwrap();
    let seen = fp.labels_seen();
    for label in WRITE_LABELS {
        assert!(
            seen.iter().any(|s| s == label),
            "failpoint {label} never hit by a full save — catalog out of date"
        );
    }
    seen.into_iter().map(|l| (l.clone(), fp.hits(&l))).collect()
}

/// Kills the save of `next` at `(label, nth)` with `action`, then
/// reopens and asserts the old-or-new invariant.
fn kill_and_recover(
    prev: &IndexBundle,
    next: &IndexBundle,
    label: &str,
    nth: u64,
    action: FailAction,
) {
    let dir = TempDir::new("kill");
    let fp = Failpoints::enabled();
    let store = Store::open_with(dir.path(), fp.clone(), RetryPolicy::none()).unwrap();
    let gen_a = store.save(prev).unwrap();
    fp.reset();
    fp.arm(label, nth, action);
    let outcome = store.save(next);
    drop(store);

    // Reopen as a fresh process would: no failpoints, default retries.
    let store = Store::open(dir.path()).unwrap();
    let (generation, loaded) = store
        .load_latest()
        .unwrap_or_else(|e| panic!("recovery after {action:?} at {label}#{nth} failed: {e}"));
    if outcome.is_ok() {
        // The armed point was never reached before the save finished —
        // only possible for plans beyond the last hit, which the matrix
        // does not generate.
        assert_eq!(generation, gen_a + 1);
        assert_eq!(&loaded, next, "completed save must read back as new");
        return;
    }
    if generation == gen_a {
        assert_eq!(
            &loaded, prev,
            "{action:?} at {label}#{nth}: old generation torn"
        );
    } else {
        assert_eq!(
            &loaded, next,
            "{action:?} at {label}#{nth}: new generation torn"
        );
    }
    assert!(loaded.index.verify().is_clean());
}

#[test]
fn crash_matrix_old_or_new_never_torn() {
    let a = bundle_a();
    let b = bundle_b();
    let hits = reference_hits(&a, &b);
    let mut points = 0u32;
    for (label, count) in &hits {
        for nth in 1..=*count {
            kill_and_recover(&a, &b, label, nth, FailAction::Crash);
            points += 1;
        }
    }
    assert!(
        points >= WRITE_LABELS.len() as u32,
        "matrix fired only {points} crash points"
    );
}

#[test]
fn torn_write_matrix_old_or_new_never_torn() {
    let a = bundle_a();
    let b = bundle_b();
    for (label, count) in reference_hits(&a, &b) {
        // Torn actions only make sense where bytes are written.
        if label != "save.write_file" && label != "save.write_manifest" {
            continue;
        }
        for nth in 1..=count {
            kill_and_recover(&a, &b, &label, nth, FailAction::Torn);
        }
    }
}

#[test]
fn crash_before_first_manifest_leaves_empty_store() {
    // Kill the *first* save before its manifest commit: recovery has
    // nothing to serve and must say so with a typed error.
    let dir = TempDir::new("first");
    let fp = Failpoints::enabled();
    let store = Store::open_with(dir.path(), fp.clone(), RetryPolicy::none()).unwrap();
    fp.arm("save.rename_manifest", 1, FailAction::Crash);
    assert!(store.save(&bundle_a()).is_err());
    drop(store);

    let store = Store::open(dir.path()).unwrap();
    match store.load_latest() {
        Err(StoreError::Partial { generation }) => assert_eq!(generation, 1),
        other => panic!("expected Partial, got {other:?}"),
    }
    // The partial generation was quarantined for post-mortem.
    assert_eq!(store.quarantined().len(), 1);
    assert!(store.generations().unwrap().is_empty());
}

#[test]
fn partial_generation_is_quarantined_and_older_served() {
    let a = bundle_a();
    let b = bundle_b();
    let dir = TempDir::new("quarantine");
    let fp = Failpoints::enabled();
    let store = Store::open_with(dir.path(), fp.clone(), RetryPolicy::none()).unwrap();
    store.save(&a).unwrap();
    fp.reset();
    // Die halfway through the new generation's data files.
    fp.arm("save.write_file", 3, FailAction::Torn);
    assert!(store.save(&b).is_err());
    drop(store);

    let store = Store::open(dir.path()).unwrap();
    let (generation, loaded) = store.load_latest().unwrap();
    assert_eq!(generation, 1);
    assert_eq!(loaded, a);
    assert_eq!(store.quarantined().len(), 1);
    // Quarantining freed the dead number; a re-save lands cleanly.
    let next = store.save(&b).unwrap();
    assert_eq!(next, 2);
    let (generation, loaded) = store.load_latest().unwrap();
    assert_eq!(generation, 2);
    assert_eq!(loaded, b);
}

// ---------------------------------------------------------------------
// WAL crash matrix: kill every labeled WAL write site at every hit and
// assert recovery replays exactly a committed prefix — every fsynced
// batch survives unless a *successful* truncation removed it, a failed
// truncation leaves old-or-new, and nothing ever replays torn.
// ---------------------------------------------------------------------

use bgi_store::GraphUpdate;

/// Write-path WAL labels (the `wal.*` half of the `fsio` catalog;
/// `wal.read` is recovery-side and exercised separately below).
const WAL_WRITE_LABELS: &[&str] = &[
    "wal.append",
    "wal.fsync",
    "wal.group_append",
    "wal.group_fsync",
    "wal.truncate_write",
    "wal.truncate_fsync",
    "wal.truncate_rename",
    "wal.truncate_fsync_dir",
];

fn wal_batch(k: u32) -> Vec<GraphUpdate> {
    vec![
        GraphUpdate::InsertEdge { src: k, dst: k + 1 },
        GraphUpdate::DeleteEdge { src: k + 1, dst: k },
        GraphUpdate::AddVertex {
            label: k % 5,
            expected: 100 + k,
        },
    ]
}

/// The reference WAL workload: a two-batch group commit, a single
/// append, then a truncation of the first batch. Returns each write
/// label's hit count.
fn wal_reference_hits() -> Vec<(String, u64)> {
    let dir = TempDir::new("wal-ref");
    let fp = Failpoints::enabled();
    let store = Store::open_with(dir.path(), fp.clone(), RetryPolicy::none()).unwrap();
    let (mut wal, replayed) = store.open_wal().unwrap();
    assert!(replayed.is_empty());
    let seqs = wal.append_group(&[wal_batch(0), wal_batch(10)]).unwrap();
    wal.append(&wal_batch(20)).unwrap();
    wal.truncate_through(seqs[0]).unwrap();
    drop(wal);
    // Recovery-side label coverage: a reopen under the same failpoint
    // registry must route through `wal.read`.
    let (_, replayed) = store.open_wal().unwrap();
    assert_eq!(replayed.len(), 2);
    let seen = fp.labels_seen();
    for label in WAL_WRITE_LABELS {
        assert!(
            seen.iter().any(|s| s == label),
            "failpoint {label} never hit by the WAL workload — catalog out of date"
        );
    }
    assert!(
        seen.iter().any(|s| s == "wal.read"),
        "wal.read never hit during replay — catalog out of date"
    );
    WAL_WRITE_LABELS
        .iter()
        .map(|&l| (l.to_string(), fp.hits(l)))
        .collect()
}

/// Runs the reference workload with `(label, nth, action)` armed,
/// stopping at the first failure like a real writer, then reopens and
/// checks the committed-prefix invariant.
fn wal_kill_and_recover(label: &str, nth: u64, action: FailAction) {
    let dir = TempDir::new("wal-kill");
    let fp = Failpoints::enabled();
    let store = Store::open_with(dir.path(), fp.clone(), RetryPolicy::none()).unwrap();
    let (mut wal, _) = store.open_wal().unwrap();
    fp.arm(label, nth, action);

    // The first two batches go through the group-commit path, the third
    // through a single append, mirroring the reference workload so every
    // armed label has a hit to land on.
    let batches = [wal_batch(0), wal_batch(10), wal_batch(20)];
    let mut committed: Vec<(u64, Vec<GraphUpdate>)> = Vec::new();
    let mut failed = false;
    match wal.append_group(&batches[..2]) {
        Ok(seqs) => {
            for (s, b) in seqs.iter().zip(&batches[..2]) {
                committed.push((*s, b.clone()));
            }
        }
        Err(_) => failed = true,
    }
    if !failed {
        match wal.append(&batches[2]) {
            Ok(seq) => committed.push((seq, batches[2].clone())),
            Err(_) => failed = true,
        }
    }
    let truncated = if failed {
        None
    } else {
        let first = committed[0].0;
        Some((first, wal.truncate_through(first).is_ok()))
    };
    drop(wal);
    drop(store);

    // Reopen as a fresh process: no failpoints, default retries.
    let store = Store::open(dir.path()).unwrap();
    let (_, replayed) = store
        .open_wal()
        .unwrap_or_else(|e| panic!("recovery after {action:?} at {label}#{nth} failed: {e}"));

    // Every replayed batch must match what was written for that seq —
    // never torn content.
    for r in &replayed {
        let (_, expected) = batches
            .iter()
            .enumerate()
            .map(|(i, b)| (i as u64 + 1, b))
            .find(|(s, _)| *s == r.seq)
            .unwrap_or_else(|| panic!("{action:?} at {label}#{nth}: unknown seq {}", r.seq));
        assert_eq!(
            &r.updates, expected,
            "{action:?} at {label}#{nth}: torn batch replayed"
        );
    }
    let replayed_seqs: Vec<u64> = replayed.iter().map(|b| b.seq).collect();

    match truncated {
        // Truncation committed: exactly the suffix survives.
        Some((through, true)) => {
            let want: Vec<u64> = committed
                .iter()
                .map(|(s, _)| *s)
                .filter(|&s| s > through)
                .collect();
            assert_eq!(
                replayed_seqs, want,
                "{action:?} at {label}#{nth}: truncation committed but wrong suffix"
            );
        }
        // Truncation died midway: old log or new log, nothing else.
        Some((through, false)) => {
            let all: Vec<u64> = committed.iter().map(|(s, _)| *s).collect();
            let suffix: Vec<u64> = all.iter().copied().filter(|&s| s > through).collect();
            assert!(
                replayed_seqs == all || replayed_seqs == suffix,
                "{action:?} at {label}#{nth}: replay {replayed_seqs:?} is neither \
                 pre-truncation {all:?} nor post-truncation {suffix:?}"
            );
        }
        // An append died: every fsynced batch must survive, and beyond
        // them at most the in-flight records may have reached the disk
        // whole (a single append's record, or a prefix of a group's two
        // records — the fsync or the torn cut raced the kill).
        None => {
            let durable: Vec<u64> = committed.iter().map(|(s, _)| *s).collect();
            let next = durable.len() as u64 + 1;
            let ok = (0..=2u64).any(|extra| {
                let want: Vec<u64> = durable.iter().copied().chain(next..next + extra).collect();
                replayed_seqs == want
            });
            assert!(
                ok,
                "{action:?} at {label}#{nth}: replay {replayed_seqs:?} lost a \
                 committed batch (durable {durable:?})"
            );
        }
    }

    // Append-after-recovery: whatever residue the kill left behind, the
    // recovered log must commit a fresh batch without losing anything
    // already replayed — a torn tail truncated on open means the new
    // append can never land beyond an undecodable frame.
    let (mut wal, _) = store.open_wal().unwrap();
    let extra = wal_batch(30);
    let extra_seq = wal.append(&extra).unwrap();
    drop(wal);
    let (_, after) = store.open_wal().unwrap();
    let after_seqs: Vec<u64> = after.iter().map(|b| b.seq).collect();
    let mut want = replayed_seqs;
    want.push(extra_seq);
    assert_eq!(
        after_seqs, want,
        "{action:?} at {label}#{nth}: append after recovery lost a batch"
    );
    assert_eq!(
        after.last().map(|b| b.updates.clone()),
        Some(extra),
        "{action:?} at {label}#{nth}: post-recovery append replayed torn"
    );
}

#[test]
fn wal_crash_matrix_replays_committed_prefix() {
    let mut points = 0u32;
    for (label, count) in wal_reference_hits() {
        for nth in 1..=count {
            wal_kill_and_recover(&label, nth, FailAction::Crash);
            points += 1;
            // Torn bytes only make sense where bytes are written.
            if label == "wal.append" || label == "wal.group_append" || label == "wal.truncate_write"
            {
                wal_kill_and_recover(&label, nth, FailAction::Torn);
                points += 1;
            }
        }
    }
    assert!(
        points >= WAL_WRITE_LABELS.len() as u32,
        "WAL matrix fired only {points} points"
    );
}
