//! The determinism contract of parallel construction (DESIGN.md §8):
//! for any thread count, the greedy build, the per-layer index builds,
//! and the store's parallel section encode all produce *byte-identical*
//! results to the serial path — checked down to the MANIFEST, whose
//! checksums cover every data file of a generation.

mod common;

use bgi_search::blinks::BlinksParams;
use bgi_search::RClique;
use bgi_store::bundle::{encode_banks, encode_blinks, encode_index, encode_rclique};
use bgi_store::{IndexBundle, Store};
use big_index::{BiGIndex, BuildParams, EvalOptions};
use common::TempDir;
use std::fs;
use std::path::Path;

/// A graph big enough that the sampling estimator and Algo. 1 really
/// run (several labels generalizable, a few hundred vertices).
fn dataset() -> (bgi_graph::DiGraph, bgi_graph::Ontology) {
    use bgi_graph::{GraphBuilder, LabelId, OntologyBuilder, VId};
    let mut ob = OntologyBuilder::new(12);
    for leaf in 2..7u32 {
        ob.add_subtype(LabelId(0), LabelId(leaf));
    }
    for leaf in 7..12u32 {
        ob.add_subtype(LabelId(1), LabelId(leaf));
    }
    let ontology = ob.build().unwrap();
    let mut b = GraphBuilder::new();
    let n = 400u32;
    for i in 0..n {
        b.add_vertex(LabelId(2 + (i % 10)));
    }
    for i in 0..n {
        b.add_edge(VId(i), VId((i * 7 + 1) % n));
        b.add_edge(VId(i), VId((i * 13 + 5) % n));
        if i % 3 == 0 {
            b.add_edge(VId((i * 5 + 2) % n), VId(i));
        }
    }
    (b.build(), ontology)
}

fn greedy_params(threads: usize) -> BuildParams {
    BuildParams {
        max_layers: 3,
        threads,
        ..BuildParams::default()
    }
}

fn bundle_with(threads: usize) -> IndexBundle {
    let (g, ontology) = dataset();
    let index = BiGIndex::build(g, ontology, &greedy_params(threads));
    IndexBundle::build_with_threads(
        index,
        BlinksParams::default(),
        RClique::default(),
        EvalOptions::default(),
        threads,
    )
}

#[test]
fn parallel_greedy_build_is_byte_identical_to_serial() {
    let serial = bundle_with(1);
    assert!(serial.index.verify().is_clean());
    for threads in [2usize, 4, 8] {
        let parallel = bundle_with(threads);
        assert!(parallel.index.verify().is_clean());
        assert_eq!(serial, parallel, "{threads}-thread bundle diverged");
        // Equality could in principle hold while encodings differ
        // (e.g. map iteration order leaking into the codec) — the
        // on-disk contract is about bytes, so compare those too.
        assert_eq!(encode_index(&serial.index), encode_index(&parallel.index));
        for m in 0..=serial.num_layers() {
            assert_eq!(
                encode_banks(&serial.banks[m]),
                encode_banks(&parallel.banks[m])
            );
            assert_eq!(
                encode_blinks(&serial.blinks[m]),
                encode_blinks(&parallel.blinks[m])
            );
            assert_eq!(
                encode_rclique(&serial.rclique[m]),
                encode_rclique(&parallel.rclique[m])
            );
        }
    }
}

/// Every file of a generation directory, sorted by name.
fn generation_files(root: &Path) -> Vec<(String, Vec<u8>)> {
    let dir = root.join("gen-00000001");
    let mut files: Vec<(String, Vec<u8>)> = fs::read_dir(&dir)
        .unwrap()
        .map(|e| {
            let e = e.unwrap();
            (
                e.file_name().to_string_lossy().into_owned(),
                fs::read(e.path()).unwrap(),
            )
        })
        .collect();
    files.sort();
    files
}

#[test]
fn parallel_save_produces_identical_generation_and_manifest() {
    let bundle = bundle_with(1);
    let serial_dir = TempDir::new("det-serial");
    let parallel_dir = TempDir::new("det-parallel");
    let serial_store = Store::open(serial_dir.path()).unwrap();
    let parallel_store = Store::open(parallel_dir.path()).unwrap();
    assert_eq!(serial_store.save(&bundle).unwrap(), 1);
    assert_eq!(parallel_store.save_with_threads(&bundle, 4).unwrap(), 1);

    let serial_files = generation_files(serial_dir.path());
    let parallel_files = generation_files(parallel_dir.path());
    assert_eq!(serial_files, parallel_files, "generation contents differ");
    assert!(serial_files.iter().any(|(name, _)| name == "MANIFEST"));

    // And the parallel-saved generation recovers to the exact bundle.
    let (generation, loaded) = parallel_store.load_latest().unwrap();
    assert_eq!(generation, 1);
    assert_eq!(loaded, bundle);
}
