//! `eval_Ont` (Algo. 2): hierarchical query processing.
//!
//! 1. generalize the query to the chosen layer `m`;
//! 2. evaluate the plugged-in algorithm `f` on `Gᵐ`;
//! 3. specialize each generalized answer down the hierarchy with
//!    candidate filtering ([`crate::spec`]);
//! 4. materialize final answers at layer 0 — structurally (Algo. 3 or
//!    Algo. 4) for tree semantics, or by re-verifying pairwise distances
//!    for the r-clique semantics;
//! 5. rank and truncate to `k`.
//!
//! Every step is timed separately so the query-performance breakdown of
//! Figs. 10–14 (summary-graph exploration vs. pruning vs. answer
//! generation) can be reproduced.
//!
//! ## Correctness contract
//!
//! Final answers are always *sound*: they satisfy the original query
//! semantics on `G⁰` (realized edges exist; keyword labels match
//! exactly). They are *complete* (Thm. 4.2, `eval_Ont = eval`) whenever
//! the query keywords generalize injectively at the chosen layer — i.e.
//! no *other* label shares a keyword's generalized image — which is
//! exactly the situation the distortion term of the cost model steers
//! construction toward. With distorted keywords the pipeline can prune
//! roots whose only realizations end at wrong-label nodes, as the
//! paper's candidate filtering does; the integration tests pin down both
//! regimes.

use crate::ans_gen::{vertex_answer_generation_budgeted, GenStats};
use crate::index::BiGIndex;
use crate::path_gen::path_answer_generation_budgeted;
use crate::query_gen::{generalize_query, optimal_layer};
use crate::spec::{specialize_answer_budgeted, SpecializedAnswer};
use bgi_graph::{DiGraph, VId};
use bgi_search::answer::rank_and_truncate;
use bgi_search::{AnswerGraph, Budget, Completeness, Interrupted, KeywordQuery, KeywordSearch};
use rustc_hash::FxHashMap;
use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// How final answers are materialized from specialized candidates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RealizerKind {
    /// Algo. 3: vertex-at-a-time structural realization.
    VertexAtATime,
    /// Algo. 4: path-based structural realization (the default; the
    /// Sec. 4.3.3 optimization).
    #[default]
    PathBased,
    /// Keyword-nodes-only specialization with pairwise bounded-distance
    /// verification on `G⁰` — for distance semantics (r-clique).
    DistanceVerify,
    /// Structural realization first; when a generalized answer realizes
    /// to nothing structurally (clique witness paths are often not
    /// edge-realizable even though the keyword nodes qualify), fall back
    /// to distance verification for that answer. The boost-dkws default.
    StructuralThenDistance,
}

/// Tuning knobs for `eval_Ont`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalOptions {
    /// `β` of the query-generalization cost model (Formula 4).
    pub beta: f64,
    /// Materialization strategy.
    pub realizer: RealizerKind,
    /// Use the specialization-order optimization (Sec. 4.3.2).
    pub use_spec_order: bool,
    /// Use early keyword specialization / `isKey` pruning (Sec. 4.3.1).
    pub early_keyword_spec: bool,
    /// When fewer than `k` final answers survive pruning, refetch
    /// `overfetch ×` more generalized answers and retry (doubling until
    /// the generalized answer stream is exhausted).
    pub overfetch: usize,
    /// Op allowance for the post-exhaustion wrap-up slice: when the
    /// summary search comes back best-effort (its budget ran out), the
    /// already-found generalized answers are still specialized and
    /// realized under [`Budget::grace`] with this many checks, so a
    /// deadline never discards work the summary layer already paid for.
    pub grace_ops: u64,
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions {
            beta: 0.4,
            realizer: RealizerKind::PathBased,
            use_spec_order: true,
            early_keyword_spec: true,
            overfetch: 4,
            grace_ops: 200_000,
        }
    }
}

/// Wall-clock breakdown of one `eval_Ont` run (Figs. 10–14).
#[derive(Debug, Clone, Copy, Default)]
pub struct StepTimings {
    /// Evaluating `f` on the summary graph.
    pub search: Duration,
    /// Specializing and pruning candidates down the hierarchy.
    pub spec_prune: Duration,
    /// Final answer generation at the data-graph layer.
    pub answer_gen: Duration,
}

impl StepTimings {
    /// Total time across all steps.
    pub fn total(&self) -> Duration {
        self.search + self.spec_prune + self.answer_gen
    }

    /// Accumulates another run's times (used when a failed summary-layer
    /// attempt falls back to the data graph: the wasted work is charged
    /// to the final result).
    pub fn absorb(&mut self, other: &StepTimings) {
        self.search += other.search;
        self.spec_prune += other.spec_prune;
        self.answer_gen += other.answer_gen;
    }
}

/// Counters from one `eval_Ont` run.
#[derive(Debug, Clone, Copy, Default)]
pub struct EvalStats {
    /// Generalized answers returned by `f` at layer `m`.
    pub generalized_answers: usize,
    /// Generalized answers discarded entirely during specialization.
    pub answers_pruned: usize,
    /// Candidate vertices pruned by Prop. 4.1 filtering.
    pub vertices_pruned: usize,
    /// Partial answers created during generation.
    pub partials_created: usize,
}

/// The outcome of one `eval_Ont` run.
#[derive(Debug, Clone)]
pub struct EvalResult {
    /// Final answers, ranked best-first.
    pub answers: Vec<AnswerGraph>,
    /// The layer the query was evaluated at.
    pub layer: usize,
    /// Per-step wall-clock times.
    pub timings: StepTimings,
    /// Candidate/pruning counters.
    pub stats: EvalStats,
    /// True if a summary-layer attempt produced nothing and the query
    /// was re-evaluated on the data graph (see `Boosted::query`).
    pub fell_back: bool,
    /// Whether the run finished exactly or returned best-effort answers
    /// after its budget ran out (see [`Completeness`]).
    pub completeness: Completeness,
}

/// Runs `eval_Ont` at an explicit layer `m` (Algo. 2 with `m` given).
pub fn eval_at_layer<F: KeywordSearch>(
    index: &BiGIndex,
    algo: &F,
    layer_index: &F::Index,
    query: &KeywordQuery,
    k: usize,
    m: usize,
    opts: &EvalOptions,
) -> EvalResult {
    match eval_at_layer_budgeted(
        index,
        algo,
        layer_index,
        query,
        k,
        m,
        opts,
        &Budget::unlimited(),
    ) {
        Ok(r) => r,
        // Unreachable: an unlimited budget never interrupts.
        Err(Interrupted) => EvalResult {
            answers: Vec::new(),
            layer: m,
            timings: StepTimings::default(),
            stats: EvalStats::default(),
            fell_back: false,
            completeness: Completeness::Exact,
        },
    }
}

/// [`eval_at_layer`] under a cooperative [`Budget`]: every pipeline step
/// (plugged-in search, specialization, answer generation, distance
/// verification) checks the budget inside its loops, so a deadline or a
/// raised cancel flag interrupts the query mid-flight with
/// [`Interrupted`] instead of running to completion.
///
/// This is the all-or-nothing view of [`eval_at_layer_anytime`]: a run
/// that was cut short — even one holding usable best-effort answers — is
/// reported as [`Interrupted`].
#[allow(clippy::too_many_arguments)]
pub fn eval_at_layer_budgeted<F: KeywordSearch>(
    index: &BiGIndex,
    algo: &F,
    layer_index: &F::Index,
    query: &KeywordQuery,
    k: usize,
    m: usize,
    opts: &EvalOptions,
    budget: &Budget,
) -> Result<EvalResult, Interrupted> {
    let r = eval_at_layer_anytime(index, algo, layer_index, query, k, m, opts, budget)?;
    if r.completeness.is_exact() {
        Ok(r)
    } else {
        Err(Interrupted)
    }
}

/// [`eval_at_layer`] as an *anytime* pipeline: on budget exhaustion the
/// run returns whatever final answers it has, marked with a non-exact
/// [`Completeness`], instead of discarding them.
///
/// * `m == 0` — the plugged-in algorithm's own anytime search runs and
///   its completeness (including the r-clique optimality bound) passes
///   straight through.
/// * `m > 0` — the summary-layer search runs anytime; if it was cut
///   short, its best-effort generalized answers are still specialized
///   and realized under a [`Budget::grace`] slice of
///   [`EvalOptions::grace_ops`] checks, and the result is marked
///   [`Completeness::Truncated`] (a summary-layer bound does not
///   translate through specialization). An interruption during
///   specialization or realization likewise keeps the finals produced so
///   far. The overfetch loop only runs while everything is exact.
///
/// `Err(Interrupted)` means the budget ran out before *any* final
/// answer was produced.
#[allow(clippy::too_many_arguments)]
pub fn eval_at_layer_anytime<F: KeywordSearch>(
    index: &BiGIndex,
    algo: &F,
    layer_index: &F::Index,
    query: &KeywordQuery,
    k: usize,
    m: usize,
    opts: &EvalOptions,
    budget: &Budget,
) -> Result<EvalResult, Interrupted> {
    let mut timings = StepTimings::default();
    let mut stats = EvalStats::default();

    // Step 1: evaluate f on the summary graph with the generalized query.
    let gq = generalize_query(index, query, m);
    // Def. 4.1 condition 1: a layer where two keywords generalize to one
    // label cannot evaluate the query without modifying f; the layer
    // chooser never selects such a layer, and calling this directly with
    // one is a contract violation.
    assert!(
        gq.len() == query.len(),
        "query keywords merge at layer {m}; pick a layer where \
         |Gen^m(Q)| = |Q| (Def. 4.1) or use Boosted::query"
    );

    if m == 0 {
        // Evaluating on the data graph *is* the baseline; no translation
        // and no overfetch — the algorithm's completeness is the run's.
        let t = Instant::now();
        let outcome = algo.search_anytime(index.graph_at(0), layer_index, &gq, k, budget)?;
        timings.search = t.elapsed();
        stats.generalized_answers = outcome.answers.len();
        return Ok(EvalResult {
            answers: rank_and_truncate(outcome.answers, k),
            layer: 0,
            timings,
            stats,
            fell_back: false,
            completeness: outcome.completeness,
        });
    }

    // Fetch k generalized answers first; if pruning leaves fewer than k
    // final answers, refetch a growing multiple (the paper's Sec. 4.3.4
    // specializes one generalized answer at a time until k finals — the
    // refetch loop is the batched equivalent for a top-k `f`).
    let mut fetch = k;
    let mut rounds = 0usize;
    let mut finals: Vec<AnswerGraph> = Vec::new();
    let mut truncated = false;
    // Distance cache for the DistanceVerify realizer: bounded undirected
    // BFS balls on G⁰, shared across every generalized answer (and
    // refetch round) of this evaluation — hub balls are expensive and
    // heavily reused.
    let mut dist_cache: DistCache = FxHashMap::default();
    loop {
        rounds += 1;
        let t = Instant::now();
        let summary = algo.search_anytime(index.graph_at(m), layer_index, &gq, fetch, budget)?;
        timings.search += t.elapsed();
        let generalized = summary.answers;
        stats.generalized_answers = generalized.len();
        let exhausted = generalized.len() < fetch;

        // When the summary search came back best-effort, its budget is
        // spent: walk the answers it found down the hierarchy under a
        // bounded grace slice so the paid-for summary work still yields
        // data-graph answers.
        let grace;
        let step_budget: &Budget = if summary.completeness.is_exact() {
            budget
        } else {
            truncated = true;
            grace = budget.grace(opts.grace_ops);
            &grace
        };

        // Steps 2-5: specialize in rank order, realize, stop at k answers.
        finals.clear();
        stats.answers_pruned = 0;
        stats.vertices_pruned = 0;
        stats.partials_created = 0;
        for ga in &generalized {
            let t = Instant::now();
            let spec = specialize_answer_budgeted(
                index,
                query,
                ga,
                m,
                opts.early_keyword_spec,
                step_budget,
            );
            timings.spec_prune += t.elapsed();
            let spec = match spec {
                Ok(s) => s,
                Err(Interrupted) => {
                    truncated = true;
                    break;
                }
            };
            let Some(spec) = spec else {
                stats.answers_pruned += 1;
                continue;
            };
            stats.vertices_pruned += spec.pruned;

            let remaining = k.saturating_sub(finals.len()).max(1);
            let t = Instant::now();
            let realized = realize_one(
                index,
                query,
                ga,
                &spec,
                remaining,
                opts,
                &mut dist_cache,
                step_budget,
            );
            timings.answer_gen += t.elapsed();
            let (realized, gen_stats) = match realized {
                Ok(r) => r,
                Err(Interrupted) => {
                    truncated = true;
                    break;
                }
            };
            stats.partials_created += gen_stats.partials_created;
            finals.extend(realized);
            if finals.len() >= k {
                break;
            }
        }
        // Cap the refetch rounds: re-running f is the batched stand-in
        // for the paper's one-at-a-time specialization, and unbounded
        // growth on heavily distorted layers would dwarf the baseline.
        // A truncated round never refetches: the budget is already gone.
        if truncated || finals.len() >= k || exhausted || rounds >= 3 {
            break;
        }
        fetch = fetch.saturating_mul(opts.overfetch.max(2));
    }

    if truncated && finals.is_empty() {
        return Err(Interrupted);
    }
    Ok(EvalResult {
        answers: rank_and_truncate(finals, k),
        layer: m,
        timings,
        stats,
        fell_back: false,
        completeness: if truncated {
            Completeness::Truncated
        } else {
            Completeness::Exact
        },
    })
}

/// Materializes one specialized generalized answer with the configured
/// realizer (the Step-4 dispatch shared by exact and anytime runs).
#[allow(clippy::too_many_arguments)]
fn realize_one(
    index: &BiGIndex,
    query: &KeywordQuery,
    ga: &AnswerGraph,
    spec: &SpecializedAnswer,
    remaining: usize,
    opts: &EvalOptions,
    dist_cache: &mut DistCache,
    budget: &Budget,
) -> Result<(Vec<AnswerGraph>, GenStats), Interrupted> {
    match opts.realizer {
        RealizerKind::VertexAtATime => vertex_answer_generation_budgeted(
            index.base(),
            ga,
            spec,
            opts.use_spec_order,
            remaining,
            budget,
        ),
        RealizerKind::PathBased => {
            path_answer_generation_budgeted(index.base(), ga, spec, remaining, budget)
        }
        RealizerKind::DistanceVerify => {
            distance_verify(index.base(), query, ga, spec, remaining, dist_cache, budget)
        }
        RealizerKind::StructuralThenDistance => {
            let (structural, st) =
                path_answer_generation_budgeted(index.base(), ga, spec, remaining, budget)?;
            if structural.is_empty() {
                let (verified, vt) =
                    distance_verify(index.base(), query, ga, spec, remaining, dist_cache, budget)?;
                Ok((
                    verified,
                    GenStats {
                        partials_created: st.partials_created + vt.partials_created,
                        answers: vt.answers,
                    },
                ))
            } else {
                Ok((structural, st))
            }
        }
    }
}

/// Runs `eval_Ont` at the cost-optimal layer (Def. 4.1).
pub fn eval_ont<F: KeywordSearch>(
    index: &BiGIndex,
    algo: &F,
    layer_indexes: &[F::Index],
    query: &KeywordQuery,
    k: usize,
    opts: &EvalOptions,
) -> EvalResult {
    let m = optimal_layer(index, query, opts.beta);
    eval_at_layer(index, algo, &layer_indexes[m], query, k, m, opts)
}

/// Memoized bounded undirected BFS balls, keyed by source vertex.
type DistCache = FxHashMap<VId, FxHashMap<VId, u32>>;

/// The distance realizer for clique semantics: specialize keyword nodes
/// only, then verify all pairwise *undirected* distances on `G⁰` within
/// `d_max`, scoring by the sum of pairwise distances (boost-dkws,
/// Sec. 5.2).
#[allow(clippy::too_many_arguments)]
fn distance_verify(
    base: &DiGraph,
    query: &KeywordQuery,
    _answer: &AnswerGraph,
    spec: &SpecializedAnswer,
    limit: usize,
    cache: &mut DistCache,
    budget: &Budget,
) -> Result<(Vec<AnswerGraph>, GenStats), Interrupted> {
    let mut stats = GenStats::default();
    let n = query.len();
    // Candidate sets per keyword: union over the generalized answer's
    // keyword vertices.
    let mut cands: Vec<Vec<VId>> = vec![Vec::new(); n];
    // budget-exempt: one pass over the answer's positions
    for (i, key) in spec.key_of.iter().enumerate() {
        if let Some(kw) = key {
            cands[*kw].extend_from_slice(&spec.candidates[i]);
        }
    }
    if cands.iter().any(Vec::is_empty) {
        return Ok((Vec::new(), stats));
    }
    // budget-exempt: |query| candidate lists
    for c in &mut cands {
        c.sort_unstable();
        c.dedup();
    }

    // Memoized bounded undirected BFS distances (cache shared by the
    // caller across generalized answers).
    let mut dist = |g: &DiGraph, u: VId, v: VId, bound: u32| -> Option<u32> {
        if u == v {
            return Some(0);
        }
        cache.entry(u).or_insert_with(|| {
            let mut d: FxHashMap<VId, u32> = FxHashMap::default();
            let mut q = VecDeque::new();
            d.insert(u, 0);
            q.push_back(u);
            // budget-exempt: one dmax-bounded BFS ball between `rec`'s polls
            while let Some(x) = q.pop_front() {
                let dx = d[&x];
                if dx >= bound {
                    continue;
                }
                for &y in g.out_neighbors(x).iter().chain(g.in_neighbors(x)) {
                    if let std::collections::hash_map::Entry::Vacant(e) = d.entry(y) {
                        e.insert(dx + 1);
                        q.push_back(y);
                    }
                }
            }
            d
        });
        cache[&u].get(&v).copied().filter(|&d| d <= bound)
    };

    // Enumerate combinations depth-first with pairwise pruning.
    let mut picked: Vec<VId> = Vec::with_capacity(n);
    let mut results: Vec<AnswerGraph> = Vec::new();
    #[allow(clippy::too_many_arguments)]
    fn rec(
        base: &DiGraph,
        query: &KeywordQuery,
        cands: &[Vec<VId>],
        picked: &mut Vec<VId>,
        dist: &mut dyn FnMut(&DiGraph, VId, VId, u32) -> Option<u32>,
        results: &mut Vec<AnswerGraph>,
        stats: &mut GenStats,
        limit: usize,
        budget: &Budget,
    ) -> Result<(), Interrupted> {
        if results.len() >= limit {
            return Ok(());
        }
        let depth = picked.len();
        if depth == cands.len() {
            // Weight: sum of pairwise distances (all verified ≤ d_max).
            let mut weight = 0u64;
            // budget-exempt: pairwise over at most |query| picks
            for i in 0..picked.len() {
                for j in i + 1..picked.len() {
                    weight += dist(base, picked[i], picked[j], query.dmax).unwrap() as u64;
                }
            }
            results.push(materialize_clique(base, query, picked, weight));
            stats.answers += 1;
            return Ok(());
        }
        for &v in &cands[depth] {
            budget.check()?;
            let ok = picked
                .iter()
                .all(|&u| dist(base, u, v, query.dmax).is_some());
            if ok {
                picked.push(v);
                stats.partials_created += 1;
                rec(
                    base, query, cands, picked, dist, results, stats, limit, budget,
                )?;
                picked.pop();
                if results.len() >= limit {
                    return Ok(());
                }
            }
        }
        Ok(())
    }
    rec(
        base,
        query,
        &cands,
        &mut picked,
        &mut dist,
        &mut results,
        &mut stats,
        limit,
        budget,
    )?;
    Ok((results, stats))
}

/// Materializes a verified clique answer with undirected witness paths
/// from the first keyword node.
fn materialize_clique(
    base: &DiGraph,
    query: &KeywordQuery,
    picked: &[VId],
    weight: u64,
) -> AnswerGraph {
    let hub = picked[0];
    let mut parent: FxHashMap<VId, VId> = FxHashMap::default();
    let mut d: FxHashMap<VId, u32> = FxHashMap::default();
    let mut q = VecDeque::new();
    d.insert(hub, 0);
    q.push_back(hub);
    while let Some(x) = q.pop_front() {
        let dx = d[&x];
        if dx >= query.dmax {
            continue;
        }
        for &y in base.out_neighbors(x).iter().chain(base.in_neighbors(x)) {
            if let std::collections::hash_map::Entry::Vacant(e) = d.entry(y) {
                e.insert(dx + 1);
                parent.insert(y, x);
                q.push_back(y);
            }
        }
    }
    let mut vertices = vec![hub];
    let mut edges = Vec::new();
    for &t in &picked[1..] {
        let mut cur = t;
        vertices.push(cur);
        while cur != hub {
            let p = parent[&cur];
            if base.has_edge(p, cur) {
                edges.push((p, cur));
            } else {
                edges.push((cur, p));
            }
            vertices.push(p);
            cur = p;
        }
    }
    let keyword_matches = picked.iter().map(|&v| vec![v]).collect();
    AnswerGraph::new(vertices, edges, keyword_matches, None, weight)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GenConfig;
    use bgi_bisim::BisimDirection;
    use bgi_graph::{GraphBuilder, LabelId, OntologyBuilder};
    use bgi_search::{Banks, RClique};

    /// Labels: 0=Person, 1=Prof, 2=Student, 3=Univ. Profs and Students
    /// fan onto a Univ hub; ontology merges 1,2 -> 0.
    fn indexed() -> BiGIndex {
        let mut gb = GraphBuilder::new();
        let hub = gb.add_vertex(LabelId(3));
        for i in 0..12 {
            let l = if i % 2 == 0 { LabelId(1) } else { LabelId(2) };
            let v = gb.add_vertex(l);
            gb.add_edge(v, hub);
        }
        let g = gb.build();
        let mut ob = OntologyBuilder::new(4);
        ob.add_subtype(LabelId(0), LabelId(1));
        ob.add_subtype(LabelId(0), LabelId(2));
        let o = ob.build().unwrap();
        let c = GenConfig::new([(LabelId(1), LabelId(0)), (LabelId(2), LabelId(0))], &o).unwrap();
        BiGIndex::build_with_configs(g, o, vec![c], BisimDirection::Forward)
    }

    #[test]
    fn boosted_banks_matches_baseline() {
        let idx = indexed();
        let q = KeywordQuery::new(vec![LabelId(1), LabelId(3)], 2);
        let baseline = Banks.search_fresh(idx.base(), &q, 1000);
        let layer_index = Banks.build_index(idx.graph_at(1));
        let result = eval_at_layer(
            &idx,
            &Banks,
            &layer_index,
            &q,
            1000,
            1,
            &EvalOptions::default(),
        );
        let key = |a: &AnswerGraph| (a.root, a.score);
        let mut b: Vec<_> = baseline.iter().map(key).collect();
        let mut o: Vec<_> = result.answers.iter().map(key).collect();
        b.sort_unstable();
        o.sort_unstable();
        assert_eq!(b, o);
        assert!(result
            .answers
            .iter()
            .all(|a| a.validate(idx.base(), &q.keywords)));
    }

    #[test]
    fn both_realizers_agree() {
        let idx = indexed();
        let q = KeywordQuery::new(vec![LabelId(2), LabelId(3)], 2);
        let layer_index = Banks.build_index(idx.graph_at(1));
        let mut opts = EvalOptions {
            realizer: RealizerKind::VertexAtATime,
            ..EvalOptions::default()
        };
        let a = eval_at_layer(&idx, &Banks, &layer_index, &q, 1000, 1, &opts);
        opts.realizer = RealizerKind::PathBased;
        let b = eval_at_layer(&idx, &Banks, &layer_index, &q, 1000, 1, &opts);
        let ids = |r: &EvalResult| {
            let mut v: Vec<_> = r
                .answers
                .iter()
                .map(bgi_search::AnswerGraph::identity)
                .collect();
            v.sort();
            v
        };
        assert_eq!(ids(&a), ids(&b));
    }

    #[test]
    fn top_k_early_termination() {
        let idx = indexed();
        let q = KeywordQuery::new(vec![LabelId(1), LabelId(3)], 2);
        let layer_index = Banks.build_index(idx.graph_at(1));
        let r = eval_at_layer(
            &idx,
            &Banks,
            &layer_index,
            &q,
            2,
            1,
            &EvalOptions::default(),
        );
        assert_eq!(r.answers.len(), 2);
    }

    #[test]
    fn layer0_is_plain_baseline() {
        let idx = indexed();
        let q = KeywordQuery::new(vec![LabelId(1), LabelId(3)], 2);
        let base_index = Banks.build_index(idx.base());
        let r = eval_at_layer(&idx, &Banks, &base_index, &q, 5, 0, &EvalOptions::default());
        assert_eq!(r.layer, 0);
        assert_eq!(r.answers.len(), 5);
        assert!(r.timings.spec_prune.is_zero());
    }

    #[test]
    fn distance_realizer_matches_rclique_baseline() {
        let idx = indexed();
        let q = KeywordQuery::new(vec![LabelId(1), LabelId(3)], 4);
        let rc = RClique::default();
        let baseline = rc.search_fresh(idx.base(), &q, 1000);
        let layer_index = rc.build_index(idx.graph_at(1));
        let opts = EvalOptions {
            realizer: RealizerKind::DistanceVerify,
            ..EvalOptions::default()
        };
        let r = eval_at_layer(&idx, &rc, &layer_index, &q, 1000, 1, &opts);
        // Same keyword-node sets and weights.
        let key = |a: &AnswerGraph| {
            let mut kw: Vec<VId> = a.keyword_matches.iter().map(|m| m[0]).collect();
            kw.sort_unstable();
            (kw, a.score)
        };
        let mut b: Vec<_> = baseline.iter().map(key).collect();
        let mut o: Vec<_> = r.answers.iter().map(key).collect();
        b.sort();
        o.sort();
        assert_eq!(b, o);
    }

    #[test]
    fn eval_ont_picks_valid_layer() {
        let idx = indexed();
        let q = KeywordQuery::new(vec![LabelId(1), LabelId(3)], 2);
        let indexes = vec![
            Banks.build_index(idx.graph_at(0)),
            Banks.build_index(idx.graph_at(1)),
        ];
        let r = eval_ont(&idx, &Banks, &indexes, &q, 5, &EvalOptions::default());
        assert!(r.layer <= idx.num_layers());
        assert!(!r.answers.is_empty());
    }

    #[test]
    fn zero_budget_interrupts_pipeline() {
        let idx = indexed();
        let q = KeywordQuery::new(vec![LabelId(1), LabelId(3)], 2);
        let layer_index = Banks.build_index(idx.graph_at(1));
        let expired = Budget::with_timeout(Duration::ZERO);
        let r = eval_at_layer_budgeted(
            &idx,
            &Banks,
            &layer_index,
            &q,
            10,
            1,
            &EvalOptions::default(),
            &expired,
        );
        assert!(r.is_err(), "an expired budget must interrupt Algo. 2");
        // The same call with an unlimited budget succeeds.
        let ok = eval_at_layer_budgeted(
            &idx,
            &Banks,
            &layer_index,
            &q,
            10,
            1,
            &EvalOptions::default(),
            &Budget::unlimited(),
        );
        assert!(ok.is_ok_and(|r| !r.answers.is_empty()));
    }

    #[test]
    fn anytime_eval_surfaces_best_effort_answers() {
        let idx = indexed();
        let q = KeywordQuery::new(vec![LabelId(1), LabelId(3)], 4);
        let rc = RClique::default();
        let layer_index = rc.build_index(idx.graph_at(1));
        let opts = EvalOptions {
            realizer: RealizerKind::DistanceVerify,
            ..EvalOptions::default()
        };
        // A zero-check budget interrupts the all-or-nothing pipeline...
        let spent = Budget::with_check_limit(0);
        let err = eval_at_layer_budgeted(&idx, &rc, &layer_index, &q, 5, 1, &opts, &spent);
        assert!(err.is_err(), "a spent budget must interrupt the exact run");
        // ...but the anytime pipeline still delivers: the greedy seed's
        // own op slice finds a generalized answer and the grace slice
        // specializes it down to the data graph.
        let spent = Budget::with_check_limit(0);
        let r = eval_at_layer_anytime(&idx, &rc, &layer_index, &q, 5, 1, &opts, &spent)
            .expect("best-effort answers survive a spent budget");
        assert!(!r.answers.is_empty());
        assert!(!r.completeness.is_exact());
        assert!(r
            .answers
            .iter()
            .all(|a| a.validate(idx.base(), &q.keywords)));
        // Unlimited anytime run is exact.
        let r = eval_at_layer_anytime(
            &idx,
            &rc,
            &layer_index,
            &q,
            5,
            1,
            &opts,
            &Budget::unlimited(),
        )
        .unwrap();
        assert_eq!(r.completeness, Completeness::Exact);
    }

    #[test]
    fn pruning_stats_recorded() {
        let idx = indexed();
        // Query Prof: the Person supernode's Students get pruned.
        let q = KeywordQuery::new(vec![LabelId(1), LabelId(3)], 2);
        let layer_index = Banks.build_index(idx.graph_at(1));
        let r = eval_at_layer(
            &idx,
            &Banks,
            &layer_index,
            &q,
            1000,
            1,
            &EvalOptions::default(),
        );
        assert!(r.stats.generalized_answers > 0);
        assert!(r.stats.vertices_pruned > 0);
    }
}
