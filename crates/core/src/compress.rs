//! Compression-ratio computation and estimation (Sec. 3.2, part (i)).
//!
//! `compress(G, C) = |χ(G, C)| / |G| = |Bisim(Gen(G, C))| / |G|` — the
//! smaller, the better the layer compresses. Computing it exactly means
//! generalizing and bisimulating the whole graph, so the greedy
//! configuration search estimates it instead on `n` sampled r-hop
//! node-induced subgraphs, averaging per-sample ratios.

use crate::config::GenConfig;
use bgi_bisim::{maximal_bisimulation, summarize, BisimDirection};
use bgi_graph::sampling::{sample_subgraphs_threaded, SamplingParams};
use bgi_graph::subgraph::InducedSubgraph;
use bgi_graph::DiGraph;

/// Exact compression ratio of applying `χ(·, C)` to `g`.
pub fn exact_compress(g: &DiGraph, config: &GenConfig, dir: BisimDirection) -> f64 {
    if g.size() == 0 {
        return 1.0;
    }
    let generalized = g.relabel(&config.label_map(g.alphabet_size()));
    let part = maximal_bisimulation(&generalized, dir);
    let summary = summarize(&generalized, &part);
    summary.graph.size() as f64 / g.size() as f64
}

/// Pre-drawn samples for repeated estimation against many candidate
/// configurations (Algo. 1 evaluates hundreds of candidates against the
/// same sample set).
#[derive(Debug)]
pub struct CompressEstimator {
    samples: Vec<InducedSubgraph>,
    alphabet_size: usize,
    dir: BisimDirection,
}

impl CompressEstimator {
    /// Draws the sample set from `g`.
    pub fn new(g: &DiGraph, params: &SamplingParams, dir: BisimDirection) -> Self {
        Self::new_threaded(g, params, dir, 1)
    }

    /// [`CompressEstimator::new`] drawing the r-hop balls on up to
    /// `threads` scoped workers. Per-sample seeding makes the sample
    /// set bit-identical to the serial draw (see
    /// [`bgi_graph::sampling::sample_subgraphs_threaded`]), so the
    /// estimates — and everything downstream, up to the stored index
    /// bytes — do not depend on the thread count.
    pub fn new_threaded(
        g: &DiGraph,
        params: &SamplingParams,
        dir: BisimDirection,
        threads: usize,
    ) -> Self {
        CompressEstimator {
            samples: sample_subgraphs_threaded(g, params, threads),
            alphabet_size: g.alphabet_size(),
            dir,
        }
    }

    /// Number of samples drawn.
    pub fn num_samples(&self) -> usize {
        self.samples.len()
    }

    /// Estimated `compress(G, C)` as the pooled ratio
    /// `Σ|χ(s, C)| / Σ|s|` over the samples. Pooling weights each sample
    /// by its size, so the many tiny (often singleton) balls drawn from
    /// sparse regions do not drown out the compressible ones — the
    /// variant that tracks the exact ratio's *ordering* across candidate
    /// configurations, which is all Algo. 1 needs (Exp-4 validates the
    /// ordering with Spearman correlation). Returns 1.0 with no samples.
    pub fn estimate(&self, config: &GenConfig) -> f64 {
        self.estimate_on(config, self.samples.len())
    }

    /// [`CompressEstimator::estimate`] over only the first
    /// `max_samples` samples — Algo. 1 ranks hundreds of candidate
    /// mappings, and a capped estimate keeps the greedy loop linear in
    /// practice while preserving the candidate *ordering* (what the
    /// greedy search needs).
    pub fn estimate_on(&self, config: &GenConfig, max_samples: usize) -> f64 {
        if self.samples.is_empty() || max_samples == 0 {
            return 1.0;
        }
        let map = config.label_map(self.alphabet_size);
        let mut summarized = 0usize;
        let mut original = 0usize;
        for s in self.samples.iter().take(max_samples) {
            if s.graph.size() == 0 {
                continue;
            }
            let generalized = s.graph.relabel(&map);
            let part = maximal_bisimulation(&generalized, self.dir);
            let summary = summarize(&generalized, &part);
            summarized += summary.graph.size();
            original += s.graph.size();
        }
        if original == 0 {
            1.0
        } else {
            summarized as f64 / original as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgi_graph::{GraphBuilder, LabelId, Ontology, OntologyBuilder};

    /// 50 vertices of label 1 and 50 of label 2, all pointing at a hub
    /// (label 3). Generalizing 1,2 -> 0 lets all 100 collapse.
    fn fan_two_types() -> DiGraph {
        let mut b = GraphBuilder::new();
        let hub = b.add_vertex(LabelId(3));
        for i in 0..100 {
            let l = if i < 50 { LabelId(1) } else { LabelId(2) };
            let v = b.add_vertex(l);
            b.add_edge(v, hub);
        }
        b.build()
    }

    fn ontology() -> Ontology {
        let mut b = OntologyBuilder::new(4);
        b.add_subtype(LabelId(0), LabelId(1));
        b.add_subtype(LabelId(0), LabelId(2));
        b.build().unwrap()
    }

    #[test]
    fn generalization_enables_compression() {
        let g = fan_two_types();
        let o = ontology();
        let empty = GenConfig::empty();
        let full =
            GenConfig::new([(LabelId(1), LabelId(0)), (LabelId(2), LabelId(0))], &o).unwrap();
        let c_empty = exact_compress(&g, &empty, BisimDirection::Forward);
        let c_full = exact_compress(&g, &full, BisimDirection::Forward);
        // Without generalization: 2 person-blocks + hub = |3 + 2| / 201.
        // With: 1 block + hub = |2 + 1| / 201.
        assert!(c_full < c_empty);
        assert!((c_full - 3.0 / 201.0).abs() < 1e-9, "c_full = {c_full}");
    }

    /// Like `fan_two_types` but edges point hub -> persons, so forward
    /// r-hop balls from the hub capture the compressible structure.
    fn outward_fan() -> DiGraph {
        let mut b = GraphBuilder::new();
        let hub = b.add_vertex(LabelId(3));
        for i in 0..100 {
            let l = if i < 50 { LabelId(1) } else { LabelId(2) };
            let v = b.add_vertex(l);
            b.add_edge(hub, v);
        }
        b.build()
    }

    #[test]
    fn estimator_tracks_exact_ordering() {
        let g = outward_fan();
        let o = ontology();
        let empty = GenConfig::empty();
        let full =
            GenConfig::new([(LabelId(1), LabelId(0)), (LabelId(2), LabelId(0))], &o).unwrap();
        let est = CompressEstimator::new(
            &g,
            &SamplingParams {
                radius: 2,
                num_samples: 60,
                max_ball: 256,
                seed: 3,
            },
            BisimDirection::Forward,
        );
        // The estimate must preserve the relative ordering of configs
        // (that is what Exp-4 validates with Spearman correlation).
        assert!(est.estimate(&full) < est.estimate(&empty));
    }

    #[test]
    fn estimates_are_ratios() {
        let g = bgi_graph::generate::uniform_random(200, 600, 4, 5);
        let est = CompressEstimator::new(
            &g,
            &SamplingParams {
                radius: 2,
                num_samples: 30,
                max_ball: 256,
                seed: 7,
            },
            BisimDirection::Forward,
        );
        let r = est.estimate(&GenConfig::empty());
        assert!(r > 0.0 && r <= 1.0 + 1e-9, "r = {r}");
    }

    #[test]
    fn threaded_estimator_is_bit_identical_to_serial() {
        let g = bgi_graph::generate::uniform_random(300, 900, 5, 9);
        let params = SamplingParams {
            radius: 2,
            num_samples: 48,
            max_ball: 64,
            seed: 11,
        };
        let serial = CompressEstimator::new(&g, &params, BisimDirection::Forward);
        let o = ontology();
        let config =
            GenConfig::new([(LabelId(1), LabelId(0)), (LabelId(2), LabelId(0))], &o).unwrap();
        for threads in [2usize, 4, 8] {
            let parallel =
                CompressEstimator::new_threaded(&g, &params, BisimDirection::Forward, threads);
            assert_eq!(serial.num_samples(), parallel.num_samples());
            // f64 bit equality, not approximate: the sample sets match.
            assert_eq!(
                serial.estimate(&config).to_bits(),
                parallel.estimate(&config).to_bits(),
                "{threads} threads"
            );
            assert_eq!(
                serial.estimate(&GenConfig::empty()).to_bits(),
                parallel.estimate(&GenConfig::empty()).to_bits()
            );
        }
    }

    #[test]
    fn empty_graph_degenerates_gracefully() {
        let g = GraphBuilder::new().build();
        assert_eq!(
            exact_compress(&g, &GenConfig::empty(), BisimDirection::Forward),
            1.0
        );
        let est = CompressEstimator::new(&g, &SamplingParams::default(), BisimDirection::Forward);
        assert_eq!(est.estimate(&GenConfig::empty()), 1.0);
    }
}
