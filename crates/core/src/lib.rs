//! # big-index
//!
//! **BiG-index** — *Bisimulation of Generalized Graph Index* — the
//! primary contribution of Jiang, Choi, Xu & Bhowmick, "A Generic
//! Ontology Framework for Indexing Keyword Search on Massive Graphs"
//! (TKDE 2019 / ICDE 2021).
//!
//! The index generalizes a data graph's labels along an ontology DAG
//! ([`config`], [`index`]), summarizes the generalized graph by maximal
//! bisimulation, and repeats the two steps to form a hierarchy
//! `𝔾 = {G⁰ … Gʰ}`. Configurations are chosen greedily under a cost
//! model balancing compression against semantic distortion
//! ([`cost`], [`distort`], [`compress`], [`heuristic`]).
//!
//! Queries are generalized to the cost-optimal layer ([`query_gen`]),
//! evaluated there by any plugged-in keyword search algorithm
//! (`bgi_search::KeywordSearch`), specialized back down with candidate
//! filtering ([`spec`]), and materialized into final answers by
//! vertex-at-a-time ([`ans_gen`]) or path-based ([`path_gen`])
//! generation. [`eval`] orchestrates the whole pipeline (Algo. 2) and
//! [`boost`] packages the three boosted algorithms of Sec. 5
//! (boost-bkws, boost-rkws, boost-dkws).
//!
//! ```
//! use bgi_graph::{GraphBuilder, LabelId, OntologyBuilder};
//! use bgi_search::{Banks, KeywordQuery};
//! use big_index::{BiGIndex, BuildParams, Boosted, EvalOptions};
//!
//! // Person-subtype vertices pointing at a hub.
//! let mut gb = GraphBuilder::new();
//! let hub = gb.add_vertex(LabelId(3));
//! for i in 0..10 {
//!     let v = gb.add_vertex(LabelId(1 + (i % 2) as u32));
//!     gb.add_edge(v, hub);
//! }
//! let g = gb.build();
//! let mut ob = OntologyBuilder::new(4);
//! ob.add_subtype(LabelId(0), LabelId(1));
//! ob.add_subtype(LabelId(0), LabelId(2));
//! let ont = ob.build().unwrap();
//!
//! let index = BiGIndex::build(g, ont, &BuildParams::default());
//! let boosted = Boosted::new(&index, Banks, EvalOptions::default());
//! let q = KeywordQuery::new(vec![LabelId(1), LabelId(3)], 2);
//! let result = boosted.query(&q, 10);
//! assert!(!result.answers.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ans_gen;
pub mod boost;
pub mod compress;
pub mod config;
pub mod cost;
pub mod distort;
pub mod eval;
pub mod heuristic;
pub mod index;
pub mod layer;
pub mod maintenance;
pub mod path_gen;
pub mod query_gen;
pub mod spec;

pub use boost::{boost_dkws, Boosted};
pub use config::{full_step_config, greedy_full_step_configs, GenConfig};
pub use eval::{
    eval_at_layer, eval_at_layer_budgeted, eval_ont, EvalOptions, EvalResult, RealizerKind,
};
pub use index::{BiGIndex, BuildParams, Summarizer};
// The invariant checker the index validates itself with at build time
// (debug builds and the `validate` feature); re-exported so callers can
// inspect [`bgi_verify::Report`]s from [`BiGIndex::verify`].
pub use bgi_verify as verify;
