//! The two cost models.
//!
//! **Index construction** (Formula 3):
//! `cost(G, C) = α·compress(G, C) + (1 − α)·distort(G, C)` —
//! both terms in `[0, 1]`, both "smaller is better", traded off by `α`.
//!
//! **Query generalization** (Formula 4): the cost of evaluating a query
//! at layer `m` combines the layer's compression ratio with the growth
//! of the generalized keywords' supports:
//!
//! `cost_q(m) = β·(|G^m|/|G⁰|) + (1−β)·(Σᵢ sup(Genᵐ(qᵢ), Gᵐ)) / (Σᵢ sup(qᵢ, G⁰))`
//!
//! Note on the first term: the published formula prints it as
//! `β(1 − |χᵐ(G)|/|G|)`, which *increases* as summaries shrink and
//! would always select `m = 0` — contradicting the surrounding text
//! ("the smaller the summary graph, the more efficient the query
//! processing") and Fig. 19. We use the orientation consistent with the
//! text: smaller summaries reduce the first term. See DESIGN.md.

use crate::compress::CompressEstimator;
use crate::config::GenConfig;
use crate::distort::graph_distortion;
use bgi_graph::stats::LabelSupport;

/// Weights and thresholds for index construction.
#[derive(Debug, Clone, Copy)]
pub struct CostParams {
    /// `α`: weight of `compress` vs `distort` in Formula 3.
    pub alpha: f64,
    /// `θ`: greedy acceptance threshold in Algo. 1.
    pub theta: f64,
    /// `Π`: maximum number of generalizations per configuration.
    pub pi: usize,
}

impl Default for CostParams {
    fn default() -> Self {
        CostParams {
            alpha: 0.5,
            theta: 1.0, // the paper's default: "a large value of θ"
            pi: usize::MAX,
        }
    }
}

/// Formula 3 with an estimated compression ratio.
pub fn construction_cost(
    estimator: &CompressEstimator,
    support: &LabelSupport,
    config: &GenConfig,
    alpha: f64,
) -> f64 {
    construction_cost_capped(estimator, support, config, alpha, usize::MAX)
}

/// [`construction_cost`] with a cap on the number of samples used for
/// the compression estimate (the greedy construction's fast path).
pub fn construction_cost_capped(
    estimator: &CompressEstimator,
    support: &LabelSupport,
    config: &GenConfig,
    alpha: f64,
    max_samples: usize,
) -> f64 {
    debug_assert!((0.0..=1.0).contains(&alpha));
    alpha * estimator.estimate_on(config, max_samples)
        + (1.0 - alpha) * graph_distortion(config, support)
}

/// Formula 3 with a precomputed compression ratio (exact or estimated).
pub fn construction_cost_with_compress(
    compress: f64,
    support: &LabelSupport,
    config: &GenConfig,
    alpha: f64,
) -> f64 {
    alpha * compress + (1.0 - alpha) * graph_distortion(config, support)
}

/// Formula 4: query-generalization cost of evaluating at layer `m`.
///
/// - `size_ratio` = `|G^m| / |G⁰|`;
/// - `keyword_support_ratio` = `Σᵢ sup(Genᵐ(qᵢ), Gᵐ) / Σᵢ sup(qᵢ, G⁰)`,
///   clamped below at 1 (a generalized keyword never has fewer matches),
///   then squashed to `[0, 1]` as `1 − 1/ratio` so both terms share a
///   scale;
/// - `beta` trades them off.
pub fn query_cost(size_ratio: f64, keyword_support_ratio: f64, beta: f64) -> f64 {
    debug_assert!((0.0..=1.0).contains(&beta));
    let support_penalty = if keyword_support_ratio <= 1.0 {
        0.0
    } else {
        1.0 - 1.0 / keyword_support_ratio
    };
    beta * size_ratio + (1.0 - beta) * support_penalty
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgi_bisim::BisimDirection;
    use bgi_graph::sampling::SamplingParams;
    use bgi_graph::{GraphBuilder, LabelId, OntologyBuilder};

    #[test]
    fn construction_cost_bounds() {
        let mut gb = GraphBuilder::new();
        let hub = gb.add_vertex(LabelId(0));
        for i in 0..20 {
            let v = gb.add_vertex(LabelId(1 + (i % 2) as u32));
            gb.add_edge(v, hub);
        }
        let g = gb.build();
        let mut ob = OntologyBuilder::new(4);
        ob.add_subtype(LabelId(3), LabelId(1));
        ob.add_subtype(LabelId(3), LabelId(2));
        let o = ob.build().unwrap();
        let c = GenConfig::new([(LabelId(1), LabelId(3)), (LabelId(2), LabelId(3))], &o).unwrap();
        let est = CompressEstimator::new(
            &g,
            &SamplingParams {
                radius: 2,
                num_samples: 20,
                max_ball: 256,
                seed: 1,
            },
            BisimDirection::Forward,
        );
        let support = bgi_graph::stats::LabelSupport::new(&g);
        for alpha in [0.0, 0.3, 0.5, 1.0] {
            let cost = construction_cost(&est, &support, &c, alpha);
            assert!((0.0..=1.0 + 1e-9).contains(&cost), "alpha {alpha}: {cost}");
        }
    }

    #[test]
    fn alpha_extremes_isolate_terms() {
        let mut gb = GraphBuilder::new();
        gb.add_vertex(LabelId(1));
        gb.add_vertex(LabelId(2));
        let g = gb.build();
        let mut ob = OntologyBuilder::new(4);
        ob.add_subtype(LabelId(3), LabelId(1));
        ob.add_subtype(LabelId(3), LabelId(2));
        let o = ob.build().unwrap();
        let c = GenConfig::new([(LabelId(1), LabelId(3)), (LabelId(2), LabelId(3))], &o).unwrap();
        let support = bgi_graph::stats::LabelSupport::new(&g);
        // alpha = 0: pure distortion.
        let d = construction_cost_with_compress(0.9, &support, &c, 0.0);
        assert!((d - graph_distortion(&c, &support)).abs() < 1e-12);
        // alpha = 1: pure compression.
        let cmp = construction_cost_with_compress(0.9, &support, &c, 1.0);
        assert!((cmp - 0.9).abs() < 1e-12);
    }

    #[test]
    fn query_cost_prefers_compression_when_beta_high() {
        // Layer A: small summary, high keyword support growth.
        let a = query_cost(0.2, 10.0, 0.9);
        // Layer B: big summary, no keyword growth.
        let b = query_cost(0.9, 1.0, 0.9);
        assert!(a < b);
    }

    #[test]
    fn query_cost_prefers_selectivity_when_beta_low() {
        let a = query_cost(0.2, 10.0, 0.1);
        let b = query_cost(0.9, 1.0, 0.1);
        assert!(b < a);
    }

    #[test]
    fn query_cost_bounds() {
        for &(sr, kr, beta) in &[
            (0.0, 1.0, 0.5),
            (1.0, 1.0, 0.5),
            (0.5, 100.0, 0.3),
            (0.8, 0.5, 0.7), // ratio < 1 clamps to no penalty
        ] {
            let c = query_cost(sr, kr, beta);
            assert!((0.0..=1.0 + 1e-9).contains(&c), "{sr} {kr} {beta} -> {c}");
        }
    }
}
