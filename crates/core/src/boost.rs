//! The boosted algorithms of Sec. 5: any [`KeywordSearch`] plugged into
//! BiG-index, with the plug-in's own index prebuilt on *every* layer so
//! query time never includes index construction.
//!
//! `Boosted<Banks>` is **boost-bkws**, `Boosted<Blinks>` is
//! **boost-rkws**, `Boosted<RClique>` is **boost-dkws** (structural
//! realization, per Sec. 5.2's "identical to Sec. 5.1" answer
//! generation; see [`boost_dkws`]).

use crate::eval::{eval_at_layer, eval_at_layer_budgeted, EvalOptions, EvalResult, RealizerKind};
use crate::index::BiGIndex;
use crate::query_gen::optimal_layer;
use bgi_search::{AnswerGraph, Budget, Interrupted, KeywordQuery, KeywordSearch, RClique};
use std::time::{Duration, Instant};

/// A keyword search algorithm boosted by a BiG-index.
pub struct Boosted<'a, F: KeywordSearch> {
    index: &'a BiGIndex,
    algo: F,
    layer_indexes: Vec<F::Index>,
    opts: EvalOptions,
}

impl<'a, F: KeywordSearch> Boosted<'a, F> {
    /// Builds `algo`'s per-layer indexes over all layers `0..=h`.
    pub fn new(index: &'a BiGIndex, algo: F, opts: EvalOptions) -> Self {
        let layer_indexes = (0..=index.num_layers())
            .map(|m| algo.build_index(index.graph_at(m)))
            .collect();
        Boosted {
            index,
            algo,
            layer_indexes,
            opts,
        }
    }

    /// The underlying BiG-index.
    pub fn index(&self) -> &BiGIndex {
        self.index
    }

    /// The evaluation options in effect.
    pub fn options(&self) -> &EvalOptions {
        &self.opts
    }

    /// The layer the cost model would choose for `query`.
    pub fn chosen_layer(&self, query: &KeywordQuery) -> usize {
        optimal_layer(self.index, query, self.opts.beta)
    }

    /// Evaluates `query` at the cost-optimal layer (the full Algo. 2).
    ///
    /// If the summary-layer evaluation realizes *no* final answer —
    /// heavy distortion can prune every candidate (see the correctness
    /// contract in [`crate::eval`]) — the query falls back to the data
    /// graph so no baseline-findable answer is ever lost; the wasted
    /// summary work is charged to the returned timings.
    pub fn query(&self, query: &KeywordQuery, k: usize) -> EvalResult {
        let m = self.chosen_layer(query);
        let attempt = self.query_at_layer(query, k, m);
        if m == 0 || !attempt.answers.is_empty() {
            return attempt;
        }
        let mut fallback = self.query_at_layer(query, k, 0);
        fallback.timings.absorb(&attempt.timings);
        fallback.fell_back = true;
        fallback
    }

    /// [`Boosted::query`] under a cooperative [`Budget`]: the whole
    /// pipeline — including a possible layer-0 fallback — checks the
    /// budget and returns [`Interrupted`] on a deadline or cancellation.
    pub fn query_budgeted(
        &self,
        query: &KeywordQuery,
        k: usize,
        budget: &Budget,
    ) -> Result<EvalResult, Interrupted> {
        let m = self.chosen_layer(query);
        let attempt = self.query_at_layer_budgeted(query, k, m, budget)?;
        if m == 0 || !attempt.answers.is_empty() {
            return Ok(attempt);
        }
        let mut fallback = self.query_at_layer_budgeted(query, k, 0, budget)?;
        fallback.timings.absorb(&attempt.timings);
        fallback.fell_back = true;
        Ok(fallback)
    }

    /// Evaluates `query` at an explicit layer `m` (Fig. 19's sweep).
    pub fn query_at_layer(&self, query: &KeywordQuery, k: usize, m: usize) -> EvalResult {
        eval_at_layer(
            self.index,
            &self.algo,
            &self.layer_indexes[m],
            query,
            k,
            m,
            &self.opts,
        )
    }

    /// [`Boosted::query_at_layer`] under a cooperative [`Budget`].
    pub fn query_at_layer_budgeted(
        &self,
        query: &KeywordQuery,
        k: usize,
        m: usize,
        budget: &Budget,
    ) -> Result<EvalResult, Interrupted> {
        eval_at_layer_budgeted(
            self.index,
            &self.algo,
            &self.layer_indexes[m],
            query,
            k,
            m,
            &self.opts,
            budget,
        )
    }

    /// Runs the *unboosted* baseline: `f` directly on the data graph with
    /// its prebuilt layer-0 index. Returns the answers and the search
    /// wall-clock.
    pub fn baseline(&self, query: &KeywordQuery, k: usize) -> (Vec<AnswerGraph>, Duration) {
        let t = Instant::now();
        let answers = self
            .algo
            .search(self.index.base(), &self.layer_indexes[0], query, k);
        (answers, t.elapsed())
    }
}

/// boost-dkws: r-clique on top of BiG-index. Per Sec. 5.2, the neighbor
/// list is built on each layer and answer generation follows Sec. 5.1's
/// structural realization; because the clique semantics constrains only
/// the keyword nodes' pairwise distances, a generalized answer whose
/// summary witness paths happen not to be edge-realizable falls back to
/// memoized distance verification on `G⁰` instead of being refetched.
pub fn boost_dkws<'a>(
    index: &'a BiGIndex,
    algo: RClique,
    mut opts: EvalOptions,
) -> Boosted<'a, RClique> {
    opts.realizer = RealizerKind::StructuralThenDistance;
    Boosted::new(index, algo, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GenConfig;
    use bgi_bisim::BisimDirection;
    use bgi_graph::{GraphBuilder, LabelId, OntologyBuilder};
    use bgi_search::blinks::{Blinks, BlinksParams};
    use bgi_search::Banks;

    fn indexed() -> BiGIndex {
        let mut gb = GraphBuilder::new();
        let hub = gb.add_vertex(LabelId(3));
        for i in 0..16 {
            let l = if i % 2 == 0 { LabelId(1) } else { LabelId(2) };
            let v = gb.add_vertex(l);
            gb.add_edge(v, hub);
        }
        let g = gb.build();
        let mut ob = OntologyBuilder::new(4);
        ob.add_subtype(LabelId(0), LabelId(1));
        ob.add_subtype(LabelId(0), LabelId(2));
        let o = ob.build().unwrap();
        let c = GenConfig::new([(LabelId(1), LabelId(0)), (LabelId(2), LabelId(0))], &o).unwrap();
        BiGIndex::build_with_configs(g, o, vec![c], BisimDirection::Forward)
    }

    #[test]
    fn boost_bkws_equals_baseline() {
        let idx = indexed();
        let boosted = Boosted::new(&idx, Banks, EvalOptions::default());
        let q = KeywordQuery::new(vec![LabelId(1), LabelId(3)], 2);
        let (baseline, _) = boosted.baseline(&q, 1000);
        let result = boosted.query(&q, 1000);
        let key = |a: &AnswerGraph| (a.root, a.score);
        let mut b: Vec<_> = baseline.iter().map(key).collect();
        let mut o: Vec<_> = result.answers.iter().map(key).collect();
        b.sort_unstable();
        o.sort_unstable();
        assert_eq!(b, o);
    }

    #[test]
    fn boost_rkws_equals_baseline() {
        let idx = indexed();
        let blinks = Blinks::new(BlinksParams {
            block_size: 4,
            prune_dist: 5,
        });
        let boosted = Boosted::new(&idx, blinks, EvalOptions::default());
        let q = KeywordQuery::new(vec![LabelId(2), LabelId(3)], 2);
        let (baseline, _) = boosted.baseline(&q, 1000);
        let result = boosted.query(&q, 1000);
        let key = |a: &AnswerGraph| (a.root, a.score);
        let mut b: Vec<_> = baseline.iter().map(key).collect();
        let mut o: Vec<_> = result.answers.iter().map(key).collect();
        b.sort_unstable();
        o.sort_unstable();
        assert_eq!(b, o);
    }

    #[test]
    fn boost_dkws_hybrid_realizer_validates() {
        let idx = indexed();
        let boosted = boost_dkws(&idx, RClique::default(), EvalOptions::default());
        assert_eq!(
            boosted.options().realizer,
            RealizerKind::StructuralThenDistance
        );
        let q = KeywordQuery::new(vec![LabelId(1), LabelId(3)], 4);
        let result = boosted.query(&q, 10);
        assert!(!result.answers.is_empty());
        for a in &result.answers {
            assert!(a.validate(idx.base(), &q.keywords));
        }
    }

    #[test]
    fn merged_keywords_fall_back_to_layer_0() {
        let idx = indexed();
        let boosted = Boosted::new(&idx, Banks, EvalOptions::default());
        // 1 and 2 merge at layer 1: the cost model must choose layer 0.
        let q = KeywordQuery::new(vec![LabelId(1), LabelId(2)], 2);
        assert_eq!(boosted.chosen_layer(&q), 0);
        let result = boosted.query(&q, 10);
        assert_eq!(result.layer, 0);
    }

    #[test]
    fn fallback_recovers_answers_lost_to_distortion() {
        // Ontology: 0 ⊐ {1, 2}. Graph: one label-1 vertex deep behind a
        // chain, many label-2 vertices near the hub. Querying label 1
        // forces realization failures at layer 1 for the label-2
        // specializations; if everything fails the fallback must kick in.
        let idx = indexed();
        let boosted = Boosted::new(&idx, Banks, EvalOptions::default());
        // A keyword with no matches at all: both baseline and boosted
        // return empty, and the fallback marks the retry.
        let q = KeywordQuery::new(vec![LabelId(1), LabelId(3)], 2);
        let r = boosted.query(&q, 5);
        // Either the summary layer answered directly or the fallback did;
        // in both cases the result matches the baseline's top-5.
        let (baseline, _) = boosted.baseline(&q, 5);
        assert_eq!(r.answers.len(), baseline.len());
        if r.fell_back {
            assert_eq!(r.layer, 0);
        }
    }

    #[test]
    fn query_at_each_layer_is_sound() {
        let idx = indexed();
        let boosted = Boosted::new(&idx, Banks, EvalOptions::default());
        let q = KeywordQuery::new(vec![LabelId(1), LabelId(3)], 2);
        for m in 0..=idx.num_layers() {
            let r = boosted.query_at_layer(&q, 100, m);
            for a in &r.answers {
                assert!(a.validate(idx.base(), &q.keywords), "layer {m}");
            }
        }
    }
}
