//! Answer specialization and candidate pruning — Steps 2–4 of Algo. 2.
//!
//! A generalized answer `aᵐ` found at layer `m` is specialized one layer
//! at a time: every answer vertex expands to its members in the layer
//! below, and vertices matched to a query keyword are filtered by
//! Prop. 4.1 — a specialization survives only if its label at layer
//! `l` equals `Gen^l(q_k)`. Intermediate answers are *node sets*
//! (`E = ∅` until the data-graph layer) to avoid materializing
//! intermediate answer graphs, exactly as the paper prescribes.
//!
//! The `isKey` early-specialization optimization (Sec. 4.3.1) is the
//! per-layer filtering itself; disabling it (for the ablation bench)
//! defers all label checks to layer 0, which is equally correct but
//! carries larger candidate sets down the hierarchy.

use crate::index::BiGIndex;
use bgi_search::{AnswerGraph, Budget, Interrupted, KeywordQuery};

/// A generalized answer specialized down to the data graph: per
/// generalized-answer vertex, its surviving layer-0 candidates.
#[derive(Debug, Clone)]
pub struct SpecializedAnswer {
    /// `candidates[i]` = layer-0 vertices that `answer.vertices[i]`
    /// specializes to (keyword vertices already filtered by label).
    pub candidates: Vec<Vec<bgi_graph::VId>>,
    /// `key_of[i]` = the query keyword index the generalized vertex was
    /// matched to, if any (the `isKey` attribute).
    pub key_of: Vec<Option<usize>>,
    /// Number of candidate vertices pruned by Prop. 4.1 filtering.
    pub pruned: usize,
}

impl SpecializedAnswer {
    /// Total number of surviving layer-0 candidates.
    pub fn total_candidates(&self) -> usize {
        self.candidates.iter().map(Vec::len).sum()
    }
}

/// Specializes `answer` (found at layer `m` for the generalized query)
/// down to layer 0. Returns `None` when some keyword vertex loses all
/// candidates — the whole generalized answer is pruned (Sec. 4.3.1).
///
/// `query` is the *original* (layer-0) query; `early_keyword_spec`
/// toggles per-layer label filtering vs. filtering only at layer 0.
pub fn specialize_answer(
    index: &BiGIndex,
    query: &KeywordQuery,
    answer: &AnswerGraph,
    m: usize,
    early_keyword_spec: bool,
) -> Option<SpecializedAnswer> {
    // The Err arm is unreachable: an unlimited budget never interrupts.
    specialize_answer_budgeted(
        index,
        query,
        answer,
        m,
        early_keyword_spec,
        &Budget::unlimited(),
    )
    .unwrap_or_default()
}

/// [`specialize_answer`] under a cooperative [`Budget`]: the walk down
/// the hierarchy checks the budget per answer vertex per layer, so a
/// deadline interrupts even when supernodes expand to huge member sets.
pub fn specialize_answer_budgeted(
    index: &BiGIndex,
    query: &KeywordQuery,
    answer: &AnswerGraph,
    m: usize,
    early_keyword_spec: bool,
    budget: &Budget,
) -> Result<Option<SpecializedAnswer>, Interrupted> {
    let nverts = answer.vertices.len();
    // isKey: which keyword does each generalized vertex match?
    let mut key_of: Vec<Option<usize>> = vec![None; nverts];
    // budget-exempt: one pass over the answer's keyword matches
    for (kw, matches) in answer.keyword_matches.iter().enumerate() {
        for v in matches {
            if let Ok(pos) = answer.vertices.binary_search(v) {
                key_of[pos] = Some(kw);
            }
        }
    }

    let mut candidates: Vec<Vec<bgi_graph::VId>> =
        answer.vertices.iter().map(|&v| vec![v]).collect();
    let mut pruned = 0usize;

    // Walk down: layer m -> m-1 -> … -> 0.
    for l in (1..=m).rev() {
        let lower = index.graph_at(l - 1);
        for (i, cands) in candidates.iter_mut().enumerate() {
            let mut next = Vec::with_capacity(cands.len());
            for &s in cands.iter() {
                budget.check()?;
                next.extend_from_slice(index.spec_step(s, l));
            }
            // Prop. 4.1: keyword vertices must specialize to labels that
            // are still on the keyword's generalization chain.
            if let Some(kw) = key_of[i] {
                let apply_filter = early_keyword_spec || l == 1;
                if apply_filter {
                    let want = index.generalize_label(query.keywords[kw], l - 1);
                    let before = next.len();
                    next.retain(|&v| lower.label(v) == want);
                    pruned += before - next.len();
                    if next.is_empty() {
                        return Ok(None); // the whole answer is unrealizable
                    }
                }
            }
            *cands = next;
        }
    }
    Ok(Some(SpecializedAnswer {
        candidates,
        key_of,
        pruned,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GenConfig;
    use bgi_bisim::BisimDirection;
    use bgi_graph::{GraphBuilder, LabelId, Ontology, OntologyBuilder, VId};
    use bgi_search::{Banks, KeywordSearch};

    /// Labels: 0=Person(super), 1=Prof, 2=Student, 3=Univ.
    /// 4 Profs and 4 Students all point at the hub Univ.
    fn setup() -> (bgi_graph::DiGraph, Ontology) {
        let mut gb = GraphBuilder::new();
        let hub = gb.add_vertex(LabelId(3));
        for i in 0..8 {
            let l = if i < 4 { LabelId(1) } else { LabelId(2) };
            let v = gb.add_vertex(l);
            gb.add_edge(v, hub);
        }
        let g = gb.build();
        let mut ob = OntologyBuilder::new(4);
        ob.add_subtype(LabelId(0), LabelId(1));
        ob.add_subtype(LabelId(0), LabelId(2));
        (g, ob.build().unwrap())
    }

    fn indexed() -> BiGIndex {
        let (g, o) = setup();
        let c = GenConfig::new([(LabelId(1), LabelId(0)), (LabelId(2), LabelId(0))], &o).unwrap();
        BiGIndex::build_with_configs(g, o, vec![c], BisimDirection::Forward)
    }

    /// Run Banks on layer 1 for the generalized query {Person, Univ}.
    fn generalized_answer(idx: &BiGIndex) -> AnswerGraph {
        let gq = bgi_search::KeywordQuery::new(vec![LabelId(0), LabelId(3)], 2);
        let answers = Banks.search_fresh(idx.graph_at(1), &gq, 10);
        assert!(!answers.is_empty());
        answers.into_iter().next().unwrap()
    }

    #[test]
    fn keyword_candidates_filtered_by_label() {
        let idx = indexed();
        // Original query asks for Prof (1), not Student (2).
        let q = bgi_search::KeywordQuery::new(vec![LabelId(1), LabelId(3)], 2);
        let ga = generalized_answer(&idx);
        let spec = specialize_answer(&idx, &q, &ga, 1, true).unwrap();
        // The Person supernode matched keyword 0; only the 4 Profs survive.
        let kw_pos = spec
            .key_of
            .iter()
            .position(|&k| k == Some(0))
            .expect("keyword vertex present");
        assert_eq!(spec.candidates[kw_pos].len(), 4);
        assert!(spec.pruned >= 4); // the 4 Students were pruned
        for &v in &spec.candidates[kw_pos] {
            assert_eq!(idx.base().label(v), LabelId(1));
        }
    }

    #[test]
    fn late_filtering_gives_same_survivors() {
        let idx = indexed();
        let q = bgi_search::KeywordQuery::new(vec![LabelId(1), LabelId(3)], 2);
        let ga = generalized_answer(&idx);
        let early = specialize_answer(&idx, &q, &ga, 1, true).unwrap();
        let late = specialize_answer(&idx, &q, &ga, 1, false).unwrap();
        assert_eq!(early.candidates, late.candidates);
    }

    #[test]
    fn unrealizable_answer_is_pruned_entirely() {
        let idx = indexed();
        // Query a label (5) that nothing in the graph carries but whose
        // generalization chain is itself; craft an answer claiming a
        // keyword match on the Person supernode.
        let q = bgi_search::KeywordQuery::new(vec![LabelId(5), LabelId(3)], 2);
        let mut ga = generalized_answer(&idx);
        // Rewrite: pretend keyword 0 matched the Person supernode; since
        // no member has label 5, specialization must prune everything.
        ga.keyword_matches[0] = ga.keyword_matches[0].clone();
        let spec = specialize_answer(&idx, &q, &ga, 1, true);
        assert!(spec.is_none());
    }

    #[test]
    fn non_keyword_vertices_not_filtered() {
        let idx = indexed();
        let q = bgi_search::KeywordQuery::new(vec![LabelId(1), LabelId(3)], 2);
        let ga = generalized_answer(&idx);
        let spec = specialize_answer(&idx, &q, &ga, 1, true).unwrap();
        for (i, key) in spec.key_of.iter().enumerate() {
            if key.is_none() {
                // Unfiltered: candidate count equals full member count.
                let s = ga.vertices[i];
                assert_eq!(spec.candidates[i].len(), idx.spec_to_base(s, 1).len());
            }
        }
    }

    #[test]
    fn layer0_answers_specialize_to_themselves() {
        let idx = indexed();
        let q = bgi_search::KeywordQuery::new(vec![LabelId(1), LabelId(3)], 2);
        let answers = Banks.search_fresh(idx.base(), &q, 3);
        for a in answers {
            let spec = specialize_answer(&idx, &q, &a, 0, true).unwrap();
            for (i, c) in spec.candidates.iter().enumerate() {
                assert_eq!(c, &vec![a.vertices[i]]);
            }
            assert_eq!(spec.pruned, 0);
        }
    }

    #[test]
    fn candidate_counts_accumulate() {
        let idx = indexed();
        let q = bgi_search::KeywordQuery::new(vec![LabelId(1), LabelId(3)], 2);
        let ga = generalized_answer(&idx);
        let spec = specialize_answer(&idx, &q, &ga, 1, true).unwrap();
        assert_eq!(
            spec.total_candidates(),
            spec.candidates.iter().map(Vec::len).sum::<usize>()
        );
        let _ = VId(0);
    }
}
