//! Semantic distortion of a configuration (Sec. 3.2, part (ii) of the
//! cost model).
//!
//! Generalizing `ℓ` to `ℓ'` costs nothing to undo when `ℓ` is the only
//! label mapped to `ℓ'`; when `|X_ℓ|` labels share the target, a query
//! touching `ℓ'` must later distinguish `ℓ` from `|X_ℓ| − 1` siblings:
//! `distort(ℓ) = 1 − 1/|X_ℓ|`. The graph-level distortion weights each
//! label by its support `sup(ℓ) = |V_ℓ|/|V|` so that distorting frequent
//! labels costs more:
//!
//! `distort(G, C) = (Σ_ℓ distort(ℓ)·sup(ℓ)) / (|X| · Σ_ℓ sup(ℓ))`.

use crate::config::GenConfig;
use bgi_graph::stats::LabelSupport;
use bgi_graph::LabelId;

/// Per-label distortion `1 − 1/|X_ℓ|`; 0 for unmapped labels.
pub fn label_distortion(config: &GenConfig, l: LabelId) -> f64 {
    let cohort = config.cohort_size(l);
    if cohort == 0 {
        0.0
    } else {
        1.0 - 1.0 / cohort as f64
    }
}

/// Unweighted ("basic") distortion: mean of per-label distortions over
/// the configuration's domain.
pub fn basic_distortion(config: &GenConfig) -> f64 {
    if config.is_empty() {
        return 0.0;
    }
    let sum: f64 = config.domain().map(|l| label_distortion(config, l)).sum();
    sum / config.len() as f64
}

/// Support-weighted distortion `distort(G, C)` of Sec. 3.2.
///
/// Labels absent from the graph (support 0) contribute nothing; when the
/// whole domain has zero support the distortion is 0 (generalizing
/// unused labels is free).
pub fn graph_distortion(config: &GenConfig, support: &LabelSupport) -> f64 {
    if config.is_empty() {
        return 0.0;
    }
    let mut weighted = 0.0;
    let mut total_support = 0.0;
    for l in config.domain() {
        let s = support.support(l);
        weighted += label_distortion(config, l) * s;
        total_support += s;
    }
    if total_support == 0.0 {
        return 0.0;
    }
    weighted / (config.len() as f64 * total_support)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgi_graph::{GraphBuilder, LabelId, OntologyBuilder};

    fn setup() -> (GenConfig, LabelSupport) {
        // Ontology: 0 -> {1, 2, 3}; config maps 1, 2, 3 -> 0.
        let mut b = OntologyBuilder::new(4);
        b.add_subtype(LabelId(0), LabelId(1));
        b.add_subtype(LabelId(0), LabelId(2));
        b.add_subtype(LabelId(0), LabelId(3));
        let o = b.build().unwrap();
        let c = GenConfig::new(
            [
                (LabelId(1), LabelId(0)),
                (LabelId(2), LabelId(0)),
                (LabelId(3), LabelId(0)),
            ],
            &o,
        )
        .unwrap();
        // Graph: 6 vertices of label 1, 2 of label 2, 2 of label 3.
        let mut gb = GraphBuilder::new();
        for _ in 0..6 {
            gb.add_vertex(LabelId(1));
        }
        for _ in 0..2 {
            gb.add_vertex(LabelId(2));
        }
        for _ in 0..2 {
            gb.add_vertex(LabelId(3));
        }
        let g = gb.build();
        (c, LabelSupport::new(&g))
    }

    #[test]
    fn example_3_1_two_to_one_target() {
        // Two labels to one target: distort = 1/2 each (Example 3.1).
        let mut b = OntologyBuilder::new(3);
        b.add_subtype(LabelId(0), LabelId(1));
        b.add_subtype(LabelId(0), LabelId(2));
        let o = b.build().unwrap();
        let c = GenConfig::new([(LabelId(1), LabelId(0)), (LabelId(2), LabelId(0))], &o).unwrap();
        assert!((label_distortion(&c, LabelId(1)) - 0.5).abs() < 1e-12);
        assert!((label_distortion(&c, LabelId(2)) - 0.5).abs() < 1e-12);
        assert!((basic_distortion(&c) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn singleton_mapping_has_zero_distortion() {
        let mut b = OntologyBuilder::new(2);
        b.add_subtype(LabelId(0), LabelId(1));
        let o = b.build().unwrap();
        let c = GenConfig::new([(LabelId(1), LabelId(0))], &o).unwrap();
        assert_eq!(label_distortion(&c, LabelId(1)), 0.0);
        assert_eq!(basic_distortion(&c), 0.0);
    }

    #[test]
    fn three_way_cohort() {
        let (c, _) = setup();
        for l in [1u32, 2, 3] {
            assert!((label_distortion(&c, LabelId(l)) - 2.0 / 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn weighted_distortion_in_unit_interval() {
        let (c, s) = setup();
        let d = graph_distortion(&c, &s);
        assert!(d > 0.0 && d <= 1.0, "d = {d}");
    }

    #[test]
    fn empty_config_zero() {
        let (_, s) = setup();
        assert_eq!(graph_distortion(&GenConfig::empty(), &s), 0.0);
    }

    #[test]
    fn unsupported_labels_are_free() {
        // Config over labels that never occur in the graph.
        let mut b = OntologyBuilder::new(6);
        b.add_subtype(LabelId(4), LabelId(5));
        let o = b.build().unwrap();
        let c = GenConfig::new([(LabelId(5), LabelId(4))], &o).unwrap();
        let mut gb = GraphBuilder::new();
        gb.add_vertex(LabelId(0));
        let g = gb.build();
        assert_eq!(graph_distortion(&c, &LabelSupport::new(&g)), 0.0);
    }
}
