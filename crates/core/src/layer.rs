//! One layer of the BiG-index hierarchy.
//!
//! Layer `i` records everything needed to move between `G^{i-1}` and
//! `G^i = χ(G^{i-1}, C^i) = Bisim(Gen(G^{i-1}, C^i))`:
//! the configuration `C^i`, its dense label map, the summary graph, and
//! the two-way vertex correspondence (`χ` upward, `Spec`/`Bisim⁻¹`
//! downward, implemented as tables — the paper's hash tables).

use crate::config::GenConfig;
use bgi_graph::{DiGraph, LabelId, VId};

/// Layer `i ≥ 1` of a BiG-index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Layer {
    /// The configuration `C^i` applied to `G^{i-1}`.
    pub config: GenConfig,
    /// Dense label map of `C^i` over the full alphabet.
    pub label_map: Vec<LabelId>,
    /// The summary graph `G^i`.
    pub graph: DiGraph,
    /// `χ`: vertex of `G^{i-1}` → its supernode in `G^i`.
    supernode_of: Vec<VId>,
    /// `Bisim⁻¹ ∘ Spec`: supernode of `G^i` → vertices of `G^{i-1}`.
    members: Vec<Vec<VId>>,
}

impl Layer {
    /// Assembles a layer from its parts.
    pub fn new(
        config: GenConfig,
        label_map: Vec<LabelId>,
        graph: DiGraph,
        supernode_of: Vec<VId>,
        members: Vec<Vec<VId>>,
    ) -> Self {
        debug_assert_eq!(graph.num_vertices(), members.len());
        Layer {
            config,
            label_map,
            graph,
            supernode_of,
            members,
        }
    }

    /// Maps a `G^{i-1}` vertex up to its `G^i` supernode.
    #[inline]
    pub fn up(&self, v: VId) -> VId {
        self.supernode_of[v.index()]
    }

    /// Specializes a `G^i` supernode down to its `G^{i-1}` members.
    #[inline]
    pub fn down(&self, s: VId) -> &[VId] {
        &self.members[s.index()]
    }

    /// Number of vertices in the layer below.
    pub fn num_lower_vertices(&self) -> usize {
        self.supernode_of.len()
    }

    /// The full `χ` table: `table[v] = supernode of v` for every vertex
    /// of `G^{i-1}` (persistence export; [`Layer::up`] is the lookup).
    pub fn supernode_table(&self) -> &[VId] {
        &self.supernode_of
    }

    /// The full `Bisim⁻¹ ∘ Spec` table: member lists indexed by
    /// supernode (persistence export; [`Layer::down`] is the lookup).
    pub fn member_lists(&self) -> &[Vec<VId>] {
        &self.members
    }

    /// The layer's size `|G^i|` (`|V| + |E|`).
    pub fn size(&self) -> usize {
        self.graph.size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgi_graph::{GraphBuilder, LabelId};

    fn tiny_layer() -> Layer {
        // Lower graph has 3 vertices collapsing to 2 supernodes.
        let mut b = GraphBuilder::new();
        b.add_vertex(LabelId(0));
        b.add_vertex(LabelId(1));
        let graph = b.build();
        Layer::new(
            GenConfig::empty(),
            vec![LabelId(0), LabelId(1)],
            graph,
            vec![VId(0), VId(0), VId(1)],
            vec![vec![VId(0), VId(1)], vec![VId(2)]],
        )
    }

    #[test]
    fn up_down_roundtrip() {
        let l = tiny_layer();
        assert_eq!(l.up(VId(0)), VId(0));
        assert_eq!(l.up(VId(2)), VId(1));
        assert_eq!(l.down(VId(0)), &[VId(0), VId(1)]);
        for v in 0..3u32 {
            assert!(l.down(l.up(VId(v))).contains(&VId(v)));
        }
    }

    #[test]
    fn sizes() {
        let l = tiny_layer();
        assert_eq!(l.num_lower_vertices(), 3);
        assert_eq!(l.size(), 2);
    }
}
