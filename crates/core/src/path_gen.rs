//! Algo. 4: path-based answer graph generation (`p_ans_graph_gen`,
//! Sec. 4.3.3).
//!
//! The generalized answer graph is decomposed into a canonical path set
//! at its *joint vertices* (vertices of degree > 2). Each path is
//! specialized as a unit — avoiding the duplicated per-vertex checks of
//! Algo. 3 — and the answer graphs are reassembled by joining paths on
//! their shared joint vertices (path qualification, Def. 4.3: two paths
//! join only if they agree on the concrete value of every shared joint).

use crate::ans_gen::GenStats;
use crate::spec::SpecializedAnswer;
use bgi_graph::{DiGraph, VId};
use bgi_search::{AnswerGraph, Budget, Interrupted};
use rustc_hash::FxHashMap;

/// A decomposed path: positions (indices into the answer's vertex list)
/// plus the orientation of each step (`true` = edge follows path
/// direction `p[i] -> p[i+1]`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenPath {
    /// Vertex positions along the path.
    pub positions: Vec<usize>,
    /// `forward[i]` orients the generalized edge between `positions[i]`
    /// and `positions[i+1]`.
    pub forward: Vec<bool>,
}

/// Decomposes the generalized answer graph into paths at joint vertices
/// (`answer_decomposition` of Algo. 4). Isolated vertices come back as
/// single-position paths so every position is covered.
pub fn answer_decomposition(answer: &AnswerGraph) -> Vec<GenPath> {
    let n = answer.vertices.len();
    let pos_of = |v: VId| answer.vertices.binary_search(&v).expect("answer vertex");
    // Undirected incidence: per position, (edge index, is_source).
    let mut incident: Vec<Vec<(usize, bool)>> = vec![Vec::new(); n];
    for (e, &(u, v)) in answer.edges.iter().enumerate() {
        incident[pos_of(u)].push((e, true));
        incident[pos_of(v)].push((e, false));
    }
    // Break vertices: joints (degree > 2) and endpoints (degree != 2).
    let is_break = |p: usize| incident[p].len() != 2;
    let mut edge_used = vec![false; answer.edges.len()];
    let mut paths = Vec::new();

    let walk = |start: usize,
                first: (usize, bool),
                edge_used: &mut Vec<bool>,
                incident: &[Vec<(usize, bool)>]|
     -> GenPath {
        let mut positions = vec![start];
        let mut forward = Vec::new();
        let (mut e, mut from_source) = first;
        loop {
            edge_used[e] = true;
            let (u, v) = answer.edges[e];
            let (pu, pv) = (pos_of(u), pos_of(v));
            let next = if from_source { pv } else { pu };
            forward.push(from_source);
            positions.push(next);
            if is_break(next) {
                break;
            }
            // Continue through the degree-2 vertex on its other edge.
            let cont = incident[next]
                .iter()
                .copied()
                .find(|&(e2, _)| !edge_used[e2]);
            match cont {
                Some((e2, fs2)) => {
                    e = e2;
                    from_source = fs2;
                }
                None => break, // closed a cycle
            }
        }
        GenPath { positions, forward }
    };

    // Start from break vertices.
    for p in 0..n {
        if !is_break(p) {
            continue;
        }
        // Copy incident list to appease the borrow checker.
        let edges_here: Vec<(usize, bool)> = incident[p].clone();
        for (e, fs) in edges_here {
            if !edge_used[e] {
                paths.push(walk(p, (e, fs), &mut edge_used, &incident));
            }
        }
    }
    // Remaining unused edges belong to pure cycles of degree-2 vertices.
    for e in 0..answer.edges.len() {
        if !edge_used[e] {
            let start = pos_of(answer.edges[e].0);
            paths.push(walk(start, (e, true), &mut edge_used, &incident));
        }
    }
    // Isolated vertices (degree 0) as trivial paths.
    for (p, inc) in incident.iter().enumerate() {
        if inc.is_empty() {
            paths.push(GenPath {
                positions: vec![p],
                forward: vec![],
            });
        }
    }
    paths
}

/// Enumerates the concrete realizations of one path against the base
/// graph (the `ans_graph_gen(pᵢ, A¹)` step of Algo. 4).
pub fn specialize_path(base: &DiGraph, spec: &SpecializedAnswer, path: &GenPath) -> Vec<Vec<VId>> {
    // The Err arm is unreachable: an unlimited budget never interrupts.
    specialize_path_budgeted(base, spec, path, &Budget::unlimited()).unwrap_or_default()
}

/// [`specialize_path`] under a cooperative [`Budget`]: checks once per
/// partial path grown.
pub fn specialize_path_budgeted(
    base: &DiGraph,
    spec: &SpecializedAnswer,
    path: &GenPath,
    budget: &Budget,
) -> Result<Vec<Vec<VId>>, Interrupted> {
    let mut partial: Vec<Vec<VId>> = spec.candidates[path.positions[0]]
        .iter()
        .map(|&v| vec![v])
        .collect();
    for (i, &fwd) in path.forward.iter().enumerate() {
        let next_pos = path.positions[i + 1];
        let mut grown = Vec::new();
        for p in &partial {
            budget.check()?;
            let last = *p.last().unwrap();
            for &c in &spec.candidates[next_pos] {
                let ok = if fwd {
                    base.has_edge(last, c)
                } else {
                    base.has_edge(c, last)
                };
                // A path may revisit a position only in cycles; concrete
                // vertices must then agree (handled by the join step for
                // shared joints; inside one path positions are distinct
                // except a possible cycle closure).
                if ok {
                    let mut q = p.clone();
                    q.push(c);
                    grown.push(q);
                }
            }
        }
        partial = grown;
        if partial.is_empty() {
            break;
        }
    }
    // Cycle closure: first and last positions equal -> concrete values
    // must match.
    if path.positions.len() > 1 && path.positions[0] == *path.positions.last().unwrap() {
        partial.retain(|p| p[0] == *p.last().unwrap());
    }
    Ok(partial)
}

/// Full Algo. 4: decompose, specialize each path, and join on shared
/// joint vertices (Def. 4.3). Returns the realized answers and
/// generation statistics comparable to Algo. 3's.
pub fn path_answer_generation(
    base: &DiGraph,
    answer: &AnswerGraph,
    spec: &SpecializedAnswer,
    limit: usize,
) -> (Vec<AnswerGraph>, GenStats) {
    // The Err arm is unreachable: an unlimited budget never interrupts.
    path_answer_generation_budgeted(base, answer, spec, limit, &Budget::unlimited())
        .unwrap_or_default()
}

/// [`path_answer_generation`] under a cooperative [`Budget`]: checks
/// inside the per-path specialization and the join loops.
pub fn path_answer_generation_budgeted(
    base: &DiGraph,
    answer: &AnswerGraph,
    spec: &SpecializedAnswer,
    limit: usize,
    budget: &Budget,
) -> Result<(Vec<AnswerGraph>, GenStats), Interrupted> {
    let n = answer.vertices.len();
    let mut stats = GenStats::default();
    if n == 0 || limit == 0 {
        return Ok((Vec::new(), stats));
    }
    let paths = answer_decomposition(answer);
    // Specialize every path, then join the most selective first.
    let mut realized: Vec<(GenPath, Vec<Vec<VId>>)> = Vec::with_capacity(paths.len());
    for p in paths {
        let r = specialize_path_budgeted(base, spec, &p, budget)?;
        realized.push((p, r));
    }
    if realized.iter().any(|(_, r)| r.is_empty()) {
        return Ok((Vec::new(), stats));
    }
    realized.sort_by_key(|(_, r)| r.len());

    // Partial answers: position -> concrete vertex.
    let mut partials: Vec<FxHashMap<usize, VId>> = vec![FxHashMap::default()];
    for (path, realizations) in &realized {
        let mut next: Vec<FxHashMap<usize, VId>> = Vec::new();
        for partial in &partials {
            for r in realizations {
                budget.check()?;
                // Path qualification (Def. 4.3): every position shared
                // with the partial must agree.
                let agrees = path
                    .positions
                    .iter()
                    .zip(r.iter())
                    .all(|(&pos, &v)| partial.get(&pos).is_none_or(|&u| u == v));
                if agrees {
                    let mut merged = partial.clone();
                    for (&pos, &v) in path.positions.iter().zip(r.iter()) {
                        merged.insert(pos, v);
                    }
                    // Distinct positions must get distinct vertices
                    // (members of distinct supernodes are disjoint, but a
                    // defensive check keeps hand-built inputs honest).
                    next.push(merged);
                    stats.partials_created += 1;
                }
            }
        }
        partials = next;
        if partials.is_empty() {
            return Ok((Vec::new(), stats));
        }
    }

    let mut answers = Vec::new();
    for partial in partials {
        budget.check()?;
        if partial.len() != n {
            continue; // uncovered positions (cannot happen post-decomposition)
        }
        let assignment: Vec<Option<VId>> = (0..n).map(|i| partial.get(&i).copied()).collect();
        answers.push(crate::ans_gen::materialize_assignment(
            answer,
            spec,
            &assignment,
        ));
        stats.answers += 1;
        if answers.len() >= limit {
            break;
        }
    }
    Ok((answers, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ans_gen::vertex_answer_generation;
    use bgi_graph::{GraphBuilder, LabelId};

    /// The Example 4.3 scenario (same base as ans_gen's tests).
    struct Scenario {
        base: DiGraph,
        answer: AnswerGraph,
        spec: SpecializedAnswer,
    }

    fn scenario() -> Scenario {
        let mut b = GraphBuilder::new();
        for l in [0u32, 1, 1, 1, 2, 2, 3] {
            b.add_vertex(LabelId(l));
        }
        b.add_edge(VId(0), VId(1));
        b.add_edge(VId(1), VId(4));
        b.add_edge(VId(2), VId(5));
        b.add_edge(VId(3), VId(5));
        b.add_edge(VId(1), VId(6));
        b.add_edge(VId(2), VId(6));
        let base = b.build();
        let answer = AnswerGraph::new(
            vec![VId(10), VId(11), VId(12), VId(13)],
            vec![(VId(10), VId(11)), (VId(11), VId(12)), (VId(11), VId(13))],
            vec![vec![VId(12)], vec![VId(13)]],
            Some(VId(10)),
            3,
        );
        let spec = SpecializedAnswer {
            candidates: vec![
                vec![VId(0)],
                vec![VId(1), VId(2), VId(3)],
                vec![VId(4), VId(5)],
                vec![VId(6)],
            ],
            key_of: vec![None, None, Some(0), Some(1)],
            pruned: 0,
        };
        Scenario { base, answer, spec }
    }

    #[test]
    fn decomposition_splits_at_joint() {
        let s = scenario();
        let paths = answer_decomposition(&s.answer);
        // Univ (position 1) has degree 3 -> three length-1 paths.
        assert_eq!(paths.len(), 3);
        for p in &paths {
            assert_eq!(p.positions.len(), 2);
            assert!(p.positions.contains(&1), "every path touches the joint");
        }
    }

    #[test]
    fn path_specialization_example_4_3() {
        let s = scenario();
        let paths = answer_decomposition(&s.answer);
        // The Academics–Univ path realizes only as (Idreos, Harvard);
        // find it by its endpoint set.
        let p1 = paths
            .iter()
            .find(|p| p.positions.contains(&0))
            .expect("Academics path");
        let r = specialize_path(&s.base, &s.spec, p1);
        assert_eq!(r.len(), 1);
        assert!(r[0].contains(&VId(0)) && r[0].contains(&VId(1)));
        // The Univ–Organization path realizes as Harvard–Ivy and
        // Cornell–Ivy.
        let p3 = paths
            .iter()
            .find(|p| p.positions.contains(&3))
            .expect("Organization path");
        let r3 = specialize_path(&s.base, &s.spec, p3);
        assert_eq!(r3.len(), 2);
    }

    #[test]
    fn join_agrees_with_vertex_generation() {
        let s = scenario();
        let (via_paths, _) = path_answer_generation(&s.base, &s.answer, &s.spec, usize::MAX);
        let (via_vertices, _) =
            vertex_answer_generation(&s.base, &s.answer, &s.spec, true, usize::MAX);
        let mut a: Vec<_> = via_paths
            .iter()
            .map(bgi_search::AnswerGraph::identity)
            .collect();
        let mut b: Vec<_> = via_vertices
            .iter()
            .map(bgi_search::AnswerGraph::identity)
            .collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
        assert_eq!(via_paths.len(), 1);
        assert_eq!(via_paths[0].vertices, vec![VId(0), VId(1), VId(4), VId(6)]);
    }

    #[test]
    fn isolated_vertex_answers() {
        let s = scenario();
        let answer = AnswerGraph::new(vec![VId(11)], vec![], vec![vec![VId(11)]], None, 0);
        let spec = SpecializedAnswer {
            candidates: vec![vec![VId(1), VId(2)]],
            key_of: vec![Some(0)],
            pruned: 0,
        };
        let (answers, _) = path_answer_generation(&s.base, &answer, &spec, usize::MAX);
        assert_eq!(answers.len(), 2);
    }

    #[test]
    fn limit_respected() {
        let s = scenario();
        let answer = AnswerGraph::new(vec![VId(11)], vec![], vec![vec![VId(11)]], None, 0);
        let spec = SpecializedAnswer {
            candidates: vec![vec![VId(1), VId(2), VId(3)]],
            key_of: vec![Some(0)],
            pruned: 0,
        };
        let (answers, _) = path_answer_generation(&s.base, &answer, &spec, 1);
        assert_eq!(answers.len(), 1);
    }

    #[test]
    fn chain_answer_is_single_path() {
        // 20 -> 21 -> 22: no joints, one path of 3 positions.
        let answer = AnswerGraph::new(
            vec![VId(20), VId(21), VId(22)],
            vec![(VId(20), VId(21)), (VId(21), VId(22))],
            vec![vec![VId(22)]],
            Some(VId(20)),
            2,
        );
        let paths = answer_decomposition(&answer);
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].positions.len(), 3);
    }

    #[test]
    fn cycle_decomposition_covers_all_edges() {
        // 30 -> 31 -> 32 -> 30: a pure cycle.
        let answer = AnswerGraph::new(
            vec![VId(30), VId(31), VId(32)],
            vec![(VId(30), VId(31)), (VId(31), VId(32)), (VId(32), VId(30))],
            vec![vec![VId(30)]],
            None,
            0,
        );
        let paths = answer_decomposition(&answer);
        let covered: usize = paths.iter().map(|p| p.forward.len()).sum();
        assert_eq!(covered, 3);
    }
}
