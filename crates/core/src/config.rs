//! Generalization configurations (Sec. 2).
//!
//! A configuration `C = {(ℓ → ℓ'), …}` maps each source label to one of
//! its *direct* supertypes in the ontology (or to itself when it has
//! none). Applying `C` to a graph replaces vertex labels simultaneously
//! — the `Gen` operation; `Spec` is its inverse on label sets.

use bgi_graph::{DiGraph, LabelId, Ontology};
use rustc_hash::FxHashMap;

/// A label-preserving generalization configuration (Def. 2.2).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GenConfig {
    /// Mappings `ℓ → ℓ'`, at most one per source label, sorted by source.
    mappings: Vec<(LabelId, LabelId)>,
}

/// Error building a configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// The target is not a direct supertype of the source.
    NotASupertype {
        /// Source label.
        from: LabelId,
        /// Proposed target label.
        to: LabelId,
    },
    /// Two mappings share the same source label.
    DuplicateSource(LabelId),
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::NotASupertype { from, to } => {
                write!(f, "{to:?} is not a direct supertype of {from:?}")
            }
            ConfigError::DuplicateSource(l) => {
                write!(f, "label {l:?} mapped more than once")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

impl GenConfig {
    /// Builds a configuration from mappings, validating each against the
    /// ontology (Def. 2.2: targets must be direct supertypes).
    pub fn new(
        mappings: impl IntoIterator<Item = (LabelId, LabelId)>,
        ontology: &Ontology,
    ) -> Result<Self, ConfigError> {
        let mut seen: FxHashMap<LabelId, LabelId> = FxHashMap::default();
        let mut sorted: Vec<(LabelId, LabelId)> = Vec::new();
        for (from, to) in mappings {
            if from == to {
                continue; // identity mappings are implicit
            }
            if !ontology.direct_supertypes(from).contains(&to) {
                return Err(ConfigError::NotASupertype { from, to });
            }
            if let Some(&prev) = seen.get(&from) {
                if prev != to {
                    return Err(ConfigError::DuplicateSource(from));
                }
                continue;
            }
            seen.insert(from, to);
            sorted.push((from, to));
        }
        sorted.sort_unstable();
        Ok(GenConfig { mappings: sorted })
    }

    /// The empty (identity) configuration.
    pub fn empty() -> Self {
        GenConfig::default()
    }

    /// Number of non-identity mappings `|C|`.
    pub fn len(&self) -> usize {
        self.mappings.len()
    }

    /// True if the configuration maps nothing.
    pub fn is_empty(&self) -> bool {
        self.mappings.is_empty()
    }

    /// The mappings, sorted by source label.
    pub fn mappings(&self) -> &[(LabelId, LabelId)] {
        &self.mappings
    }

    /// The domain `X = {ℓ : (ℓ → ℓ') ∈ C}`.
    pub fn domain(&self) -> impl Iterator<Item = LabelId> + '_ {
        self.mappings.iter().map(|&(from, _)| from)
    }

    /// Where `l` maps (identity if unmapped).
    pub fn apply(&self, l: LabelId) -> LabelId {
        match self.mappings.binary_search_by_key(&l, |&(from, _)| from) {
            Ok(i) => self.mappings[i].1,
            Err(_) => l,
        }
    }

    /// The number of labels generalized to the same target as `l`
    /// (`|X_ℓ|` in the distortion model; 0 if `l` is unmapped).
    pub fn cohort_size(&self, l: LabelId) -> usize {
        match self.mappings.binary_search_by_key(&l, |&(from, _)| from) {
            Ok(i) => {
                let target = self.mappings[i].1;
                self.mappings
                    .iter()
                    .filter(|&&(_, to)| to == target)
                    .count()
            }
            Err(_) => 0,
        }
    }

    /// A dense label map over an alphabet of `num_labels` labels:
    /// `map[ℓ] = C(ℓ)`.
    pub fn label_map(&self, num_labels: usize) -> Vec<LabelId> {
        let mut map: Vec<LabelId> = (0..num_labels as u32).map(LabelId).collect();
        for &(from, to) in &self.mappings {
            if from.index() < num_labels {
                map[from.index()] = to;
            }
        }
        map
    }

    /// Extends this configuration with `other`'s mappings (sources not
    /// already mapped). Used by the greedy construction (Algo. 1).
    pub fn insert(&mut self, from: LabelId, to: LabelId) -> bool {
        if self
            .mappings
            .binary_search_by_key(&from, |&(f, _)| f)
            .is_ok()
        {
            return false;
        }
        self.mappings.push((from, to));
        self.mappings.sort_unstable();
        true
    }
}

/// The paper's "default index" configuration for one step: every label
/// present in `g` that has a supertype is generalized once (Sec. 6.1.2:
/// large `θ` and `Π` so "the labels of the graphs were generalized once
/// when a layer was constructed").
pub fn full_step_config(g: &DiGraph, ontology: &Ontology) -> GenConfig {
    let counts = g.label_counts();
    let mappings: Vec<_> = counts
        .iter()
        .enumerate()
        .filter(|&(_, &c)| c > 0)
        .filter_map(|(i, _)| {
            let l = LabelId(i as u32);
            if l.index() >= ontology.num_labels() {
                return None;
            }
            ontology.direct_supertypes(l).first().map(|&sup| (l, sup))
        })
        .collect();
    // Every target is a direct supertype by construction and sources
    // are unique, so validation cannot fail; the identity fallback only
    // guards the type system.
    GenConfig::new(mappings, ontology).unwrap_or_default()
}

/// The greedy per-layer schedule behind the paper's default index: up
/// to `max_layers` full-step configurations, each probed by actually
/// summarizing one layer, stopping early when generalization runs out
/// of supertypes or the summary stops shrinking.
///
/// Shared by the benchmark workbench, the CLI index builders, and the
/// per-shard index construction in `bgi-shard`, so every consumer
/// derives byte-identical layer schedules from the same graph.
pub fn greedy_full_step_configs(
    g: &DiGraph,
    ontology: &Ontology,
    max_layers: usize,
    direction: bgi_bisim::BisimDirection,
) -> Vec<GenConfig> {
    let mut configs = Vec::new();
    let mut current = g.clone();
    for _ in 0..max_layers {
        let config = full_step_config(&current, ontology);
        if config.is_empty() {
            break;
        }
        // Apply one χ step to learn the next layer's labels.
        let probe = crate::index::BiGIndex::build_with_configs(
            current.clone(),
            ontology.clone(),
            vec![config.clone()],
            direction,
        );
        configs.push(config);
        let next = probe.graph_at(1).clone();
        if next.size() == current.size() {
            break;
        }
        current = next;
    }
    configs
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgi_graph::OntologyBuilder;

    fn ontology() -> Ontology {
        // 0 -> {1, 2}; 1 -> {3, 4}
        let mut b = OntologyBuilder::new(5);
        b.add_subtype(LabelId(0), LabelId(1));
        b.add_subtype(LabelId(0), LabelId(2));
        b.add_subtype(LabelId(1), LabelId(3));
        b.add_subtype(LabelId(1), LabelId(4));
        b.build().unwrap()
    }

    #[test]
    fn valid_config() {
        let o = ontology();
        let c = GenConfig::new([(LabelId(3), LabelId(1)), (LabelId(4), LabelId(1))], &o).unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(c.apply(LabelId(3)), LabelId(1));
        assert_eq!(c.apply(LabelId(2)), LabelId(2)); // identity
    }

    #[test]
    fn rejects_non_supertype() {
        let o = ontology();
        let err = GenConfig::new([(LabelId(3), LabelId(2))], &o).unwrap_err();
        assert!(matches!(err, ConfigError::NotASupertype { .. }));
        // Transitive supertype is also rejected: must be *direct*.
        let err = GenConfig::new([(LabelId(3), LabelId(0))], &o).unwrap_err();
        assert!(matches!(err, ConfigError::NotASupertype { .. }));
    }

    #[test]
    fn rejects_conflicting_duplicate_source() {
        // 3 has two supertypes only if ontology says so; here map 3 to 1
        // twice (allowed, deduped) vs conflicting mapping (rejected).
        let mut b = OntologyBuilder::new(5);
        b.add_subtype(LabelId(1), LabelId(3));
        b.add_subtype(LabelId(2), LabelId(3));
        let o = b.build().unwrap();
        let ok = GenConfig::new([(LabelId(3), LabelId(1)), (LabelId(3), LabelId(1))], &o);
        assert!(ok.is_ok());
        assert_eq!(ok.unwrap().len(), 1);
        let err = GenConfig::new([(LabelId(3), LabelId(1)), (LabelId(3), LabelId(2))], &o);
        assert!(matches!(err, Err(ConfigError::DuplicateSource(_))));
    }

    #[test]
    fn identity_mappings_dropped() {
        let o = ontology();
        let c = GenConfig::new([(LabelId(2), LabelId(2))], &o).unwrap();
        assert!(c.is_empty());
    }

    #[test]
    fn cohort_size_counts_shared_targets() {
        let o = ontology();
        let c = GenConfig::new(
            [
                (LabelId(3), LabelId(1)),
                (LabelId(4), LabelId(1)),
                (LabelId(1), LabelId(0)),
            ],
            &o,
        )
        .unwrap();
        assert_eq!(c.cohort_size(LabelId(3)), 2);
        assert_eq!(c.cohort_size(LabelId(4)), 2);
        assert_eq!(c.cohort_size(LabelId(1)), 1);
        assert_eq!(c.cohort_size(LabelId(2)), 0); // unmapped
    }

    #[test]
    fn label_map_is_total() {
        let o = ontology();
        let c = GenConfig::new([(LabelId(3), LabelId(1))], &o).unwrap();
        let map = c.label_map(5);
        assert_eq!(map[3], LabelId(1));
        assert_eq!(map[0], LabelId(0));
        assert_eq!(map.len(), 5);
    }

    #[test]
    fn insert_respects_existing_sources() {
        let o = ontology();
        let mut c = GenConfig::new([(LabelId(3), LabelId(1))], &o).unwrap();
        assert!(!c.insert(LabelId(3), LabelId(1)));
        assert!(c.insert(LabelId(4), LabelId(1)));
        assert_eq!(c.len(), 2);
    }
}
