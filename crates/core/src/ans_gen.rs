//! Algo. 3: vertex-at-a-time answer graph generation (`ans_graph_gen`).
//!
//! Given a generalized answer `aᵐ` and the layer-0 candidate sets from
//! [`crate::spec`], enumerate every assignment of one concrete vertex
//! per generalized vertex such that every generalized edge is realized
//! by a data-graph edge (vertex qualification, Def. 4.2). Candidates are
//! processed in *specialization order* (Sec. 4.3.2): positions with
//! fewer specializations first, which keeps the set of partial answers
//! small (Example 4.2).

use crate::spec::SpecializedAnswer;
use bgi_graph::{DiGraph, VId};
use bgi_search::{AnswerGraph, Budget, Interrupted};

/// Statistics of one generation run (for the optimization experiments).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GenStats {
    /// Partial answers created during enumeration (Fig. 17's metric).
    pub partials_created: usize,
    /// Complete answers produced.
    pub answers: usize,
}

/// Enumerates realized answers of `answer` (a generalized answer at any
/// layer) over the data graph `base`.
///
/// * `use_spec_order` — process positions in ascending candidate-count
///   order (the Sec. 4.3.2 optimization) instead of natural order.
/// * `limit` — stop after producing this many answers (top-k early
///   termination, Sec. 4.3.4).
pub fn vertex_answer_generation(
    base: &DiGraph,
    answer: &AnswerGraph,
    spec: &SpecializedAnswer,
    use_spec_order: bool,
    limit: usize,
) -> (Vec<AnswerGraph>, GenStats) {
    // The Err arm is unreachable: an unlimited budget never interrupts.
    vertex_answer_generation_budgeted(
        base,
        answer,
        spec,
        use_spec_order,
        limit,
        &Budget::unlimited(),
    )
    .unwrap_or_default()
}

/// [`vertex_answer_generation`] under a cooperative [`Budget`]: the DFS
/// checks the budget once per enumeration step, so a deadline interrupts
/// even when the candidate cross-product explodes.
pub fn vertex_answer_generation_budgeted(
    base: &DiGraph,
    answer: &AnswerGraph,
    spec: &SpecializedAnswer,
    use_spec_order: bool,
    limit: usize,
    budget: &Budget,
) -> Result<(Vec<AnswerGraph>, GenStats), Interrupted> {
    let n = answer.vertices.len();
    let mut stats = GenStats::default();
    if n == 0 || limit == 0 {
        return Ok((Vec::new(), stats));
    }

    // Specialization order O (Sec. 4.3.2): ascending |χ⁻¹(aᵢ)|.
    let mut order: Vec<usize> = (0..n).collect();
    if use_spec_order {
        order.sort_by_key(|&i| spec.candidates[i].len());
    }

    // Generalized edges as position pairs, made resolvable per position:
    // for each position, the generalized edges touching it whose other
    // endpoint comes earlier in the order.
    let pos_of = |v: VId| answer.vertices.binary_search(&v).expect("answer vertex");
    let rank: Vec<usize> = {
        let mut r = vec![0; n];
        // budget-exempt: one pass over the answer's positions
        for (step, &p) in order.iter().enumerate() {
            r[p] = step;
        }
        r
    };
    // checks[step] = list of (earlier position, edge direction) to verify
    // when assigning the position at `step`. Direction: true = edge goes
    // earlier -> current, false = current -> earlier.
    let mut checks: Vec<Vec<(usize, bool)>> = vec![Vec::new(); n];
    // budget-exempt: one pass over the answer's edges
    for &(u, v) in &answer.edges {
        let (pu, pv) = (pos_of(u), pos_of(v));
        if rank[pu] < rank[pv] {
            checks[rank[pv]].push((pu, true));
        } else {
            checks[rank[pu]].push((pv, false));
        }
    }

    // DFS over positions in order; assignment[pos] = chosen vertex.
    let mut assignment: Vec<Option<VId>> = vec![None; n];
    let mut results = Vec::new();
    let mut stack: Vec<usize> = vec![0]; // candidate cursor per depth
    'dfs: loop {
        budget.check()?;
        let depth = stack.len() - 1;
        let pos = order[depth];
        let cursor = &mut stack[depth];
        let cands = &spec.candidates[pos];
        let mut advanced = false;
        while *cursor < cands.len() {
            let v = cands[*cursor];
            *cursor += 1;
            // Vertex qualification (Def. 4.2) against assigned neighbors.
            let ok = checks[depth].iter().all(|&(earlier_pos, incoming)| {
                let u = assignment[earlier_pos].expect("earlier position assigned");
                if incoming {
                    base.has_edge(u, v)
                } else {
                    base.has_edge(v, u)
                }
            });
            if ok {
                assignment[pos] = Some(v);
                stats.partials_created += 1;
                advanced = true;
                break;
            }
        }
        if !advanced {
            // Exhausted this depth: backtrack.
            assignment[pos] = None;
            stack.pop();
            if stack.is_empty() {
                break 'dfs;
            }
            continue;
        }
        if depth + 1 == n {
            // Complete assignment: materialize.
            results.push(materialize_assignment(answer, spec, &assignment));
            stats.answers += 1;
            if results.len() >= limit {
                break 'dfs;
            }
            assignment[pos] = None; // keep enumerating siblings
        } else {
            stack.push(0);
        }
    }
    Ok((results, stats))
}

/// Builds the concrete [`AnswerGraph`] for a complete assignment.
pub(crate) fn materialize_assignment(
    answer: &AnswerGraph,
    spec: &SpecializedAnswer,
    assignment: &[Option<VId>],
) -> AnswerGraph {
    let n = answer.vertices.len();
    let pos_of = |v: VId| answer.vertices.binary_search(&v).expect("answer vertex");
    let vertices: Vec<VId> = (0..n).map(|i| assignment[i].unwrap()).collect();
    let edges: Vec<(VId, VId)> = answer
        .edges
        .iter()
        .map(|&(u, v)| {
            (
                assignment[pos_of(u)].unwrap(),
                assignment[pos_of(v)].unwrap(),
            )
        })
        .collect();
    let mut keyword_matches = vec![Vec::new(); answer.keyword_matches.len()];
    for (i, key) in spec.key_of.iter().enumerate() {
        if let Some(kw) = key {
            keyword_matches[*kw].push(assignment[i].unwrap());
        }
    }
    let root = answer.root.map(|r| assignment[pos_of(r)].unwrap());
    AnswerGraph::new(vertices, edges, keyword_matches, root, answer.score)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgi_graph::{GraphBuilder, LabelId};

    /// Hand-built scenario mirroring Example 4.1/4.2:
    /// generalized answer: Univ -> Eastern, Univ -> Organization,
    /// Academics -> Univ. Base graph (Fig. 7): three universities with
    /// different state/org attachments.
    struct Scenario {
        base: DiGraph,
        answer: AnswerGraph,
        spec: SpecializedAnswer,
    }

    fn scenario() -> Scenario {
        // Base vertices:
        // 0 = S.Idreos(Academics), 1 = Harvard, 2 = Cornell, 3 = Columbia,
        // 4 = Massachusetts(Eastern), 5 = NewYork(Eastern),
        // 6 = IvyLeague(Org).
        let mut b = GraphBuilder::new();
        for l in [0u32, 1, 1, 1, 2, 2, 3] {
            b.add_vertex(LabelId(l));
        }
        b.add_edge(VId(0), VId(1)); // Idreos -> Harvard
        b.add_edge(VId(1), VId(4)); // Harvard -> Massachusetts
        b.add_edge(VId(2), VId(5)); // Cornell -> NewYork
        b.add_edge(VId(3), VId(5)); // Columbia -> NewYork
        b.add_edge(VId(1), VId(6)); // Harvard -> IvyLeague
        b.add_edge(VId(2), VId(6)); // Cornell -> IvyLeague
        let base = b.build();

        // Generalized answer graph over supernodes 10..13 (ids arbitrary):
        // 10=Academics, 11=Univ, 12=Eastern, 13=Organization.
        let answer = AnswerGraph::new(
            vec![VId(10), VId(11), VId(12), VId(13)],
            vec![(VId(10), VId(11)), (VId(11), VId(12)), (VId(11), VId(13))],
            vec![vec![VId(12)], vec![VId(13)]], // keywords: Eastern, Org
            Some(VId(10)),
            3,
        );
        // Candidate sets per generalized vertex (positions follow sorted
        // vertices [10, 11, 12, 13]).
        let spec = SpecializedAnswer {
            candidates: vec![
                vec![VId(0)],                 // Academics
                vec![VId(1), VId(2), VId(3)], // Univ
                vec![VId(4), VId(5)],         // Eastern
                vec![VId(6)],                 // Organization
            ],
            key_of: vec![None, None, Some(0), Some(1)],
            pruned: 0,
        };
        Scenario { base, answer, spec }
    }

    #[test]
    fn example_4_1_generation() {
        let s = scenario();
        let (answers, _) = vertex_answer_generation(&s.base, &s.answer, &s.spec, true, usize::MAX);
        // Only Harvard satisfies all three edges (Idreos->U, U->Eastern,
        // U->Org): {Idreos, Harvard, Massachusetts, IvyLeague}.
        assert_eq!(answers.len(), 1);
        let a = &answers[0];
        assert_eq!(a.vertices, vec![VId(0), VId(1), VId(4), VId(6)]);
        assert_eq!(a.root, Some(VId(0)));
        assert_eq!(a.keyword_matches[0], vec![VId(4)]);
        assert_eq!(a.keyword_matches[1], vec![VId(6)]);
        assert!(a.validate(&s.base, &[LabelId(2), LabelId(3)]));
    }

    #[test]
    fn spec_order_reduces_partials() {
        // Example 4.2's point: starting from the widest candidate set
        // (Univ) creates more partials than starting from the most
        // selective. Give Univ the smallest generalized id so natural
        // order starts with it, then compare with the ordered run.
        let s = scenario();
        let answer = AnswerGraph::new(
            vec![VId(10), VId(11), VId(12), VId(13)], // 10=Univ, 11=Academics
            vec![(VId(11), VId(10)), (VId(10), VId(12)), (VId(10), VId(13))],
            vec![vec![VId(12)], vec![VId(13)]],
            Some(VId(11)),
            3,
        );
        let spec = SpecializedAnswer {
            candidates: vec![
                vec![VId(1), VId(2), VId(3)], // Univ: widest
                vec![VId(0)],                 // Academics
                vec![VId(4), VId(5)],         // Eastern
                vec![VId(6)],                 // Organization
            ],
            key_of: vec![None, None, Some(0), Some(1)],
            pruned: 0,
        };
        let (a_ord, with_order) =
            vertex_answer_generation(&s.base, &answer, &spec, true, usize::MAX);
        let (a_nat, without) = vertex_answer_generation(&s.base, &answer, &spec, false, usize::MAX);
        assert!(
            with_order.partials_created <= without.partials_created,
            "ordered {} vs natural {}",
            with_order.partials_created,
            without.partials_created
        );
        assert_eq!(with_order.answers, without.answers);
        assert_eq!(a_ord.len(), a_nat.len());
    }

    #[test]
    fn order_does_not_change_answers() {
        let s = scenario();
        let (a, _) = vertex_answer_generation(&s.base, &s.answer, &s.spec, true, usize::MAX);
        let (b, _) = vertex_answer_generation(&s.base, &s.answer, &s.spec, false, usize::MAX);
        let mut ia: Vec<_> = a.iter().map(bgi_search::AnswerGraph::identity).collect();
        let mut ib: Vec<_> = b.iter().map(bgi_search::AnswerGraph::identity).collect();
        ia.sort();
        ib.sort();
        assert_eq!(ia, ib);
    }

    #[test]
    fn limit_truncates_enumeration() {
        // Make all three universities valid by dropping the Eastern and
        // root constraints: answer = single Univ vertex.
        let s = scenario();
        let answer = AnswerGraph::new(vec![VId(11)], vec![], vec![vec![VId(11)]], None, 0);
        let spec = SpecializedAnswer {
            candidates: vec![vec![VId(1), VId(2), VId(3)]],
            key_of: vec![Some(0)],
            pruned: 0,
        };
        let (all, _) = vertex_answer_generation(&s.base, &answer, &spec, true, usize::MAX);
        assert_eq!(all.len(), 3);
        let (two, _) = vertex_answer_generation(&s.base, &answer, &spec, true, 2);
        assert_eq!(two.len(), 2);
    }

    #[test]
    fn unrealizable_edge_yields_nothing() {
        let s = scenario();
        // Force the Univ candidate to Columbia only: Columbia has no edge
        // to IvyLeague.
        let spec = SpecializedAnswer {
            candidates: vec![
                vec![VId(0)],
                vec![VId(3)],
                vec![VId(4), VId(5)],
                vec![VId(6)],
            ],
            key_of: s.spec.key_of.clone(),
            pruned: 0,
        };
        let (answers, _) = vertex_answer_generation(&s.base, &s.answer, &spec, true, usize::MAX);
        assert!(answers.is_empty());
    }

    #[test]
    fn empty_answer_graph() {
        let s = scenario();
        let answer = AnswerGraph::new(vec![], vec![], vec![], None, 0);
        let spec = SpecializedAnswer {
            candidates: vec![],
            key_of: vec![],
            pruned: 0,
        };
        let (answers, _) = vertex_answer_generation(&s.base, &answer, &spec, true, usize::MAX);
        assert!(answers.is_empty());
    }
}
