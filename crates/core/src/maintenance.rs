//! BiG-index maintenance under ontology updates (Sec. 3.2,
//! "Maintenance of BiG-index").
//!
//! Per the paper: (i) *adding* ontology edges never invalidates an
//! existing BiG-index — no configuration can have used the new relation
//! — so the index only records the richer ontology and can be rebuilt
//! opportunistically; (ii) *removing* a subtype–supertype relation
//! invalidates every configuration mapping through it, so the affected
//! layers are reconstructed with the offending mappings dropped.

use crate::config::GenConfig;
use crate::index::BiGIndex;
use bgi_graph::{LabelId, Ontology, OntologyBuilder};

/// Error raised when an ontology edit cannot be applied.
#[derive(Debug)]
pub enum MaintenanceError {
    /// The edit would create a supertype cycle.
    WouldCreateCycle,
    /// A rebuilt configuration became invalid (should not happen for
    /// edits produced by this module).
    InvalidConfig(crate::config::ConfigError),
}

impl std::fmt::Display for MaintenanceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MaintenanceError::WouldCreateCycle => {
                write!(f, "ontology edit would create a cycle")
            }
            MaintenanceError::InvalidConfig(e) => write!(f, "invalid configuration: {e}"),
        }
    }
}

impl std::error::Error for MaintenanceError {}

/// Returns a copy of `ontology` with the subtype edge `(sup, sub)`
/// added, or an error if that would create a cycle.
pub fn ontology_with_edge(
    ontology: &Ontology,
    sup: LabelId,
    sub: LabelId,
) -> Result<Ontology, MaintenanceError> {
    let n = ontology
        .num_labels()
        .max(sup.index() + 1)
        .max(sub.index() + 1);
    let mut b = OntologyBuilder::new(n);
    for (s, t) in ontology.subtype_edges() {
        b.add_subtype(s, t);
    }
    b.add_subtype(sup, sub);
    b.build().map_err(|_| MaintenanceError::WouldCreateCycle)
}

/// Returns a copy of `ontology` without the subtype edge `(sup, sub)`
/// (a no-op copy if the edge is absent).
pub fn ontology_without_edge(ontology: &Ontology, sup: LabelId, sub: LabelId) -> Ontology {
    let mut b = OntologyBuilder::new(ontology.num_labels());
    for (s, t) in ontology.subtype_edges() {
        if (s, t) != (sup, sub) {
            b.add_subtype(s, t);
        }
    }
    b.build().expect("removing an edge keeps the DAG acyclic")
}

impl BiGIndex {
    /// Handles the *addition* of a subtype relation: per the paper,
    /// "new ontologies do not make a BiG-index incorrect"; the index is
    /// rebuilt against the richer ontology with its existing
    /// configurations, all of which remain valid.
    pub fn ontology_edge_added(
        &self,
        sup: LabelId,
        sub: LabelId,
    ) -> Result<BiGIndex, MaintenanceError> {
        let ontology = ontology_with_edge(self.ontology(), sup, sub)?;
        let configs: Vec<GenConfig> = (1..=self.num_layers())
            .map(|i| self.layer(i).config.clone())
            .collect();
        // Revalidate each configuration against the new ontology (adding
        // edges cannot invalidate them, but the constructor checks).
        let revalidated: Result<Vec<GenConfig>, _> = configs
            .into_iter()
            .map(|c| GenConfig::new(c.mappings().iter().copied(), &ontology))
            .collect();
        let configs = revalidated.map_err(MaintenanceError::InvalidConfig)?;
        Ok(BiGIndex::build_with_configs(
            self.base().clone(),
            ontology,
            configs,
            self.direction(),
        ))
    }

    /// Handles the *removal* of the subtype relation `(sup, sub)`:
    /// every configuration mapping `sub → sup` is rewritten without the
    /// affected mapping and the hierarchy is reconstructed from the
    /// first affected layer down (the paper's "specializes the summary
    /// graphs so that the affected relationships are not involved in
    /// any configurations").
    pub fn ontology_edge_removed(
        &self,
        sup: LabelId,
        sub: LabelId,
    ) -> Result<BiGIndex, MaintenanceError> {
        let ontology = ontology_without_edge(self.ontology(), sup, sub);
        let configs: Result<Vec<GenConfig>, _> = (1..=self.num_layers())
            .map(|i| {
                let kept = self
                    .layer(i)
                    .config
                    .mappings()
                    .iter()
                    .copied()
                    .filter(|&(from, to)| (from, to) != (sub, sup));
                GenConfig::new(kept, &ontology)
            })
            .collect();
        let mut configs = configs.map_err(MaintenanceError::InvalidConfig)?;
        // Drop trailing layers whose configuration became empty — they
        // would summarize nothing new.
        while configs.last().is_some_and(GenConfig::is_empty) {
            configs.pop();
        }
        Ok(BiGIndex::build_with_configs(
            self.base().clone(),
            ontology,
            configs,
            self.direction(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgi_bisim::BisimDirection;
    use bgi_graph::{GraphBuilder, LabelId};
    use bgi_search::{Banks, KeywordQuery, KeywordSearch};

    /// 0 ⊐ {1, 2}; graph fans persons (1, 2) onto a hub (3).
    fn setup() -> BiGIndex {
        let mut gb = GraphBuilder::new();
        let hub = gb.add_vertex(LabelId(3));
        for i in 0..12 {
            let l = if i % 2 == 0 { LabelId(1) } else { LabelId(2) };
            let v = gb.add_vertex(l);
            gb.add_edge(v, hub);
        }
        let g = gb.build();
        let mut ob = OntologyBuilder::new(5);
        ob.add_subtype(LabelId(0), LabelId(1));
        ob.add_subtype(LabelId(0), LabelId(2));
        let o = ob.build().unwrap();
        let c = GenConfig::new([(LabelId(1), LabelId(0)), (LabelId(2), LabelId(0))], &o).unwrap();
        BiGIndex::build_with_configs(g, o, vec![c], BisimDirection::Forward)
    }

    #[test]
    fn removal_drops_affected_mapping() {
        let idx = setup();
        assert_eq!(idx.generalize_label(LabelId(2), 1), LabelId(0));
        let updated = idx.ontology_edge_removed(LabelId(0), LabelId(2)).unwrap();
        // Label 2 no longer generalizes; label 1 still does.
        assert_eq!(updated.generalize_label(LabelId(2), 1), LabelId(2));
        assert_eq!(updated.generalize_label(LabelId(1), 1), LabelId(0));
        // The updated index still answers queries correctly.
        let q = KeywordQuery::new(vec![LabelId(2), LabelId(3)], 2);
        let baseline = Banks.search_fresh(updated.base(), &q, 100);
        let boosted = crate::Boosted::new(&updated, Banks, crate::EvalOptions::default());
        let r = boosted.query(&q, 100);
        assert_eq!(baseline.len(), r.answers.len());
    }

    #[test]
    fn removal_of_unused_edge_is_identity_on_configs() {
        let idx = setup();
        let updated = idx.ontology_edge_removed(LabelId(0), LabelId(4)).unwrap();
        assert_eq!(updated.num_layers(), idx.num_layers());
        assert_eq!(
            updated.layer(1).config.mappings(),
            idx.layer(1).config.mappings()
        );
    }

    #[test]
    fn removing_all_mappings_drops_the_layer() {
        let idx = setup();
        let u1 = idx.ontology_edge_removed(LabelId(0), LabelId(1)).unwrap();
        let u2 = u1.ontology_edge_removed(LabelId(0), LabelId(2)).unwrap();
        // Both mappings gone: the layer's config is empty and trailing
        // empty layers are dropped.
        assert_eq!(u2.num_layers(), 0);
    }

    #[test]
    fn addition_preserves_configs_and_correctness() {
        let idx = setup();
        let updated = idx.ontology_edge_added(LabelId(0), LabelId(4)).unwrap();
        assert_eq!(updated.num_layers(), idx.num_layers());
        assert_eq!(
            updated.ontology().direct_supertypes(LabelId(4)),
            &[LabelId(0)]
        );
    }

    #[test]
    fn addition_rejects_cycles() {
        let idx = setup();
        let err = idx.ontology_edge_added(LabelId(1), LabelId(0));
        assert!(matches!(err, Err(MaintenanceError::WouldCreateCycle)));
    }
}
