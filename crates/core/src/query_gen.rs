//! Query generalization and the optimal query layer (Sec. 4.1).
//!
//! A query `Q` is generalized layer by layer through the index's
//! configurations; the *optimal query layer* (Def. 4.1) is the layer
//! minimizing the Formula 4 cost among layers where no two keywords
//! collapse into one (condition 1: `|Genᵐ(Q)| = |Q|`).

use crate::cost::query_cost;
use crate::index::BiGIndex;
use bgi_search::KeywordQuery;

/// Generalizes `q` to layer `m` (`Genᵐ(Q)`), keeping `d_max` unchanged.
pub fn generalize_query(index: &BiGIndex, q: &KeywordQuery, m: usize) -> KeywordQuery {
    let keywords: Vec<_> = q
        .keywords
        .iter()
        .map(|&kw| index.generalize_label(kw, m))
        .collect();
    KeywordQuery::new(keywords, q.dmax)
}

/// True if generalizing to layer `m` keeps all keywords distinct
/// (Def. 4.1, condition 1).
pub fn keywords_stay_distinct(index: &BiGIndex, q: &KeywordQuery, m: usize) -> bool {
    generalize_query(index, q, m).len() == q.len()
}

/// Formula 4 cost of evaluating `q` at layer `m`.
///
/// The support term measures each keyword's *specialization mass*: the
/// number of data-graph vertices whose label generalizes to the
/// keyword's layer-`m` image, relative to the keyword's own match
/// count. That is the work a generalized match creates downstream —
/// both for expansion (more seeds) and for pruning/realization — and it
/// directly reflects the semantic distortion a layer inflicts on this
/// particular query.
pub fn layer_cost(index: &BiGIndex, q: &KeywordQuery, m: usize, beta: f64) -> f64 {
    let size_ratio = index.size_ratio(m);
    let base_sum: f64 = q
        .keywords
        .iter()
        .map(|&k| index.generalized_mass(k, 0) as f64)
        .sum();
    let gen_sum: f64 = q
        .keywords
        .iter()
        .map(|&k| index.generalized_mass(index.generalize_label(k, m), m) as f64)
        .sum();
    let support_ratio = if base_sum == 0.0 {
        1.0
    } else {
        gen_sum / base_sum
    };
    query_cost(size_ratio, support_ratio, beta)
}

/// The optimal query layer per Def. 4.1: the `m` with minimal Formula 4
/// cost among layers keeping keywords distinct. The data graph (`m = 0`,
/// cost `β`) always qualifies, so a query whose keywords blow up under
/// generalization is evaluated unboosted rather than on a hostile
/// summary — the exhaustive search the paper prescribes ("the optimal
/// layer is obtained by exhaustive search").
pub fn optimal_layer(index: &BiGIndex, q: &KeywordQuery, beta: f64) -> usize {
    let mut best = (layer_cost(index, q, 0, beta), 0usize);
    for m in 1..=index.num_layers() {
        if !keywords_stay_distinct(index, q, m) {
            continue;
        }
        let c = layer_cost(index, q, m, beta);
        if c < best.0 {
            best = (c, m);
        }
    }
    best.1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GenConfig;
    use bgi_bisim::BisimDirection;
    use bgi_graph::{GraphBuilder, LabelId, OntologyBuilder};

    /// Graph with many label-1 and label-2 vertices fanned onto a hub;
    /// ontology 0 -> {1, 2}. One explicit layer generalizing both.
    fn indexed() -> BiGIndex {
        let mut gb = GraphBuilder::new();
        let hub = gb.add_vertex(LabelId(3));
        for i in 0..40 {
            let l = if i % 2 == 0 { LabelId(1) } else { LabelId(2) };
            let v = gb.add_vertex(l);
            gb.add_edge(v, hub);
        }
        let g = gb.build();
        let mut ob = OntologyBuilder::new(4);
        ob.add_subtype(LabelId(0), LabelId(1));
        ob.add_subtype(LabelId(0), LabelId(2));
        let o = ob.build().unwrap();
        let c = GenConfig::new([(LabelId(1), LabelId(0)), (LabelId(2), LabelId(0))], &o).unwrap();
        BiGIndex::build_with_configs(g, o, vec![c], BisimDirection::Forward)
    }

    #[test]
    fn generalize_query_maps_keywords() {
        let idx = indexed();
        let q = KeywordQuery::new(vec![LabelId(1), LabelId(3)], 2);
        let gq = generalize_query(&idx, &q, 1);
        assert_eq!(gq.keywords, vec![LabelId(0), LabelId(3)]);
        assert_eq!(gq.dmax, 2);
    }

    #[test]
    fn keyword_merge_detected() {
        let idx = indexed();
        // 1 and 2 both generalize to 0 at layer 1: merged.
        let q = KeywordQuery::new(vec![LabelId(1), LabelId(2)], 2);
        assert!(!keywords_stay_distinct(&idx, &q, 1));
        assert!(keywords_stay_distinct(&idx, &q, 0));
        // Distinct keywords stay distinct.
        let q2 = KeywordQuery::new(vec![LabelId(1), LabelId(3)], 2);
        assert!(keywords_stay_distinct(&idx, &q2, 1));
    }

    #[test]
    fn optimal_layer_skips_merging_layers() {
        let idx = indexed();
        let q = KeywordQuery::new(vec![LabelId(1), LabelId(2)], 2);
        // Only layer 1 exists and it merges: fall back to 0.
        assert_eq!(optimal_layer(&idx, &q, 0.5), 0);
        let q2 = KeywordQuery::new(vec![LabelId(1), LabelId(3)], 2);
        assert_eq!(optimal_layer(&idx, &q2, 0.5), 1);
    }

    #[test]
    fn layer_cost_in_unit_interval() {
        let idx = indexed();
        let q = KeywordQuery::new(vec![LabelId(1), LabelId(3)], 2);
        for beta in [0.1, 0.5, 0.9] {
            let c0 = layer_cost(&idx, &q, 0, beta);
            let c1 = layer_cost(&idx, &q, 1, beta);
            assert!((0.0..=1.0 + 1e-9).contains(&c0));
            assert!((0.0..=1.0 + 1e-9).contains(&c1));
        }
    }

    #[test]
    fn high_beta_prefers_compressed_layer() {
        let idx = indexed();
        let q = KeywordQuery::new(vec![LabelId(1), LabelId(3)], 2);
        // At beta -> 1 only size matters; layer 1 is far smaller.
        assert!(layer_cost(&idx, &q, 1, 1.0) < layer_cost(&idx, &q, 0, 1.0));
    }

    #[test]
    fn layer0_cost_has_no_support_penalty() {
        let idx = indexed();
        let q = KeywordQuery::new(vec![LabelId(1)], 2);
        // At m = 0 the support ratio is exactly 1 -> only the size term.
        let c = layer_cost(&idx, &q, 0, 0.4);
        assert!((c - 0.4).abs() < 1e-9, "c = {c}");
    }
}
