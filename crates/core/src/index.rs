//! The BiG-index (Def. 3.1): a hierarchy of generalized summary graphs.
//!
//! `𝔾 = {G⁰, …, Gʰ}` with `Gⁱ = χ(Gⁱ⁻¹, Cⁱ) = Bisim(Gen(Gⁱ⁻¹, Cⁱ))`.
//! Construction iterates Algo. 1 (greedy configuration), graph
//! generalization, and bisimulation summarization until a termination
//! condition fires (empty configuration, layer budget, or vanishing
//! compression gain).

use crate::compress::CompressEstimator;
use crate::config::GenConfig;
use crate::cost::CostParams;
use crate::heuristic::greedy_configuration_threaded;
use crate::layer::Layer;
use bgi_bisim::kbisim::k_bisimulation;
use bgi_bisim::{maximal_bisimulation, summarize, BisimDirection};
use bgi_graph::sampling::SamplingParams;
use bgi_graph::stats::LabelSupport;
use bgi_graph::{DiGraph, LabelId, Ontology, VId};

/// Which summarization formalism quotients each generalized graph.
///
/// The paper adopts maximal bisimulation as its proof-of-concept
/// summarizer and names alternative formalisms as future work (Sec. 8);
/// bounded (k-) bisimulation is the natural one: coarser summaries
/// (more compression) that still preserve labels and paths, at the cost
/// of more realization failures for traversals deeper than `k`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Summarizer {
    /// The maximal (coarsest stable) bisimulation — the paper's choice.
    #[default]
    Maximal,
    /// k-bounded bisimulation: neighborhoods agree up to depth `k`.
    KBounded(u32),
}

/// Parameters governing BiG-index construction.
#[derive(Debug, Clone)]
pub struct BuildParams {
    /// Cost-model weights and Algo. 1 thresholds.
    pub cost: CostParams,
    /// Subgraph sampling for compression estimation.
    pub sampling: SamplingParams,
    /// Bisimulation direction used by the summarizer.
    pub direction: BisimDirection,
    /// Maximum number of layers `h` (the paper's experiments use 7).
    pub max_layers: usize,
    /// Stop adding layers when a new layer's compression ratio (relative
    /// to the previous layer) exceeds this — the paper's observation
    /// that "compression potentials diminish".
    pub min_gain_ratio: f64,
    /// The summarization formalism.
    pub summarizer: Summarizer,
    /// Worker threads for the parallelizable construction stages
    /// (subgraph sampling and Algo. 1 candidate ranking). `1` is the
    /// plain serial build; any value produces a bit-identical index
    /// (DESIGN.md §8's determinism contract).
    pub threads: usize,
}

impl Default for BuildParams {
    fn default() -> Self {
        BuildParams {
            cost: CostParams::default(),
            sampling: SamplingParams::default(),
            direction: BisimDirection::Forward,
            max_layers: 7,
            min_gain_ratio: 0.98,
            summarizer: Summarizer::Maximal,
            threads: 1,
        }
    }
}

/// The BiG-index of a data graph and its ontology: the binary tuple
/// `(𝔾, 𝒞)` of Def. 3.1 plus the correspondence tables that implement
/// `χ` and `χ⁻¹`.
#[derive(Debug, Clone)]
pub struct BiGIndex {
    base: DiGraph,
    ontology: Ontology,
    layers: Vec<Layer>,
    direction: BisimDirection,
    summarizer: Summarizer,
    // Per-layer label supports (index 0 = data graph), precomputed so
    // the query-generalization cost model is O(|Q|) per layer.
    supports: Vec<LabelSupport>,
    // gen_mass[m][ℓ'] = number of *data-graph* vertices whose label
    // generalizes to ℓ' at layer m — the candidate mass a keyword
    // matching ℓ' must specialize through (the cost model's support
    // term, measured where the work happens).
    gen_mass: Vec<Vec<u64>>,
}

impl BiGIndex {
    /// Builds the index with Algo. 1 choosing each layer's configuration.
    pub fn build(g: DiGraph, ontology: Ontology, params: &BuildParams) -> Self {
        let direction = params.direction;
        let mut layers: Vec<Layer> = Vec::new();
        let mut current = g.clone();
        for layer_no in 0..params.max_layers {
            let estimator = CompressEstimator::new_threaded(
                &current,
                &params.sampling,
                direction,
                params.threads,
            );
            let support = LabelSupport::new(&current);
            let config = greedy_configuration_threaded(
                &current,
                &ontology,
                &estimator,
                &support,
                &params.cost,
                params.threads,
            );
            if config.is_empty() && layer_no > 0 {
                // Nothing left to generalize; a first layer with an empty
                // config is still useful (pure bisimulation).
                break;
            }
            let layer = Self::make_layer(
                &current,
                &config,
                direction,
                g.alphabet_size(),
                params.summarizer,
            );
            let gain = layer.graph.size() as f64 / current.size().max(1) as f64;
            let next = layer.graph.clone();
            if layer_no > 0 && gain > params.min_gain_ratio {
                break;
            }
            layers.push(layer);
            current = next;
            if current.size() == 0 {
                break;
            }
        }
        Self::assemble(g, ontology, layers, direction, params.summarizer)
    }

    /// Builds the index from explicit per-layer configurations
    /// (the paper's "default indexes": generalize every label once per
    /// layer), skipping Algo. 1.
    pub fn build_with_configs(
        g: DiGraph,
        ontology: Ontology,
        configs: Vec<GenConfig>,
        direction: BisimDirection,
    ) -> Self {
        Self::build_with_configs_summarizer(g, ontology, configs, direction, Summarizer::Maximal)
    }

    /// [`BiGIndex::build_with_configs`] with an explicit summarization
    /// formalism.
    pub fn build_with_configs_summarizer(
        g: DiGraph,
        ontology: Ontology,
        configs: Vec<GenConfig>,
        direction: BisimDirection,
        summarizer: Summarizer,
    ) -> Self {
        let alphabet = g.alphabet_size();
        let mut layers = Vec::with_capacity(configs.len());
        let mut current = g.clone();
        for config in configs {
            let layer = Self::make_layer(&current, &config, direction, alphabet, summarizer);
            let next = layer.graph.clone();
            layers.push(layer);
            current = next;
        }
        Self::assemble(g, ontology, layers, direction, summarizer)
    }

    /// Reassembles an index from previously built parts — the
    /// persistence path (`bgi-store`) round-trips the hierarchy through
    /// this. The derived tables (per-layer label supports and
    /// generalization masses) are recomputed, so only the expensive
    /// artifacts — summary graphs, configurations, and the `χ`/`Bisim⁻¹`
    /// correspondence — need to be stored.
    ///
    /// Unlike the build paths this does *not* assert the invariant suite
    /// (a corrupted on-disk index must surface as a typed error, not a
    /// panic): callers are expected to run [`BiGIndex::verify`] and
    /// refuse a dirty report themselves.
    pub fn from_parts(
        base: DiGraph,
        ontology: Ontology,
        layers: Vec<Layer>,
        direction: BisimDirection,
        summarizer: Summarizer,
    ) -> Self {
        Self::assemble_unchecked(base, ontology, layers, direction, summarizer)
    }

    fn assemble(
        base: DiGraph,
        ontology: Ontology,
        layers: Vec<Layer>,
        direction: BisimDirection,
        summarizer: Summarizer,
    ) -> Self {
        let idx = Self::assemble_unchecked(base, ontology, layers, direction, summarizer);
        // Both build paths funnel through here, so this is the single
        // place the whole hierarchy exists before anyone queries it.
        #[cfg(any(debug_assertions, feature = "validate"))]
        {
            let report = idx.verify();
            assert!(
                report.is_clean(),
                "BiG-index invariant violation:\n{report}"
            );
        }
        idx
    }

    fn assemble_unchecked(
        base: DiGraph,
        ontology: Ontology,
        layers: Vec<Layer>,
        direction: BisimDirection,
        summarizer: Summarizer,
    ) -> Self {
        let mut supports = vec![LabelSupport::new(&base)];
        supports.extend(layers.iter().map(|l| LabelSupport::new(&l.graph)));
        // Masses: push each base label's count through the per-layer
        // label maps.
        let alphabet = base.alphabet_size().max(ontology.num_labels());
        let base_counts = base.label_counts();
        let mut gen_mass: Vec<Vec<u64>> = Vec::with_capacity(layers.len() + 1);
        let mut chain: Vec<u32> = (0..alphabet as u32).collect();
        let mut level0 = vec![0u64; alphabet];
        for (l, &c) in base_counts.iter().enumerate() {
            level0[l] += c as u64;
        }
        gen_mass.push(level0);
        for layer in &layers {
            let mut mass = vec![0u64; alphabet];
            for (l, &c) in base_counts.iter().enumerate() {
                let cur = chain[l] as usize;
                let next = layer.label_map.get(cur).map_or(cur as u32, |x| x.0);
                chain[l] = next;
                mass[next as usize] += c as u64;
            }
            gen_mass.push(mass);
        }
        BiGIndex {
            base,
            ontology,
            layers,
            direction,
            summarizer,
            supports,
            gen_mass,
        }
    }

    /// One `χ` application: generalize then summarize.
    fn make_layer(
        lower: &DiGraph,
        config: &GenConfig,
        direction: BisimDirection,
        alphabet: usize,
        summarizer: Summarizer,
    ) -> Layer {
        let label_map = config.label_map(alphabet.max(lower.alphabet_size()));
        let generalized = lower.relabel(&label_map);
        let partition = match summarizer {
            Summarizer::Maximal => maximal_bisimulation(&generalized, direction),
            Summarizer::KBounded(k) => k_bisimulation(&generalized, direction, k),
        };
        let summary = summarize(&generalized, &partition);
        let supernode_of: Vec<VId> = generalized
            .vertices()
            .map(|v| summary.supernode_of(v))
            .collect();
        let members: Vec<Vec<VId>> = summary
            .graph
            .vertices()
            .map(|s| summary.members(s).to_vec())
            .collect();
        Layer::new(
            config.clone(),
            label_map,
            summary.graph.clone(),
            supernode_of,
            members,
        )
    }

    /// The data graph `G⁰`.
    pub fn base(&self) -> &DiGraph {
        &self.base
    }

    /// The ontology `G_Ont`.
    pub fn ontology(&self) -> &Ontology {
        &self.ontology
    }

    /// Number of summary layers `h` (excluding the data graph).
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// The bisimulation direction the index was built with.
    pub fn direction(&self) -> BisimDirection {
        self.direction
    }

    /// The summarization formalism the index was built with.
    pub fn summarizer(&self) -> Summarizer {
        self.summarizer
    }

    /// All layers `1..=h` in order (persistence export; [`BiGIndex::layer`]
    /// is the 1-indexed lookup).
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Layer `i` for `1 ≤ i ≤ h`.
    pub fn layer(&self, i: usize) -> &Layer {
        assert!(i >= 1 && i <= self.layers.len(), "layer {i} out of range");
        &self.layers[i - 1]
    }

    /// The graph at layer `m` (`m = 0` is the data graph).
    pub fn graph_at(&self, m: usize) -> &DiGraph {
        if m == 0 {
            &self.base
        } else {
            &self.layer(m).graph
        }
    }

    /// `χᵐ(v)`: maps a data-graph vertex up to its supernode at layer `m`.
    pub fn chi(&self, v: VId, m: usize) -> VId {
        let mut cur = v;
        for i in 1..=m {
            cur = self.layer(i).up(cur);
        }
        cur
    }

    /// One-step specialization: members of supernode `s` of layer `m` at
    /// layer `m − 1`.
    pub fn spec_step(&self, s: VId, m: usize) -> &[VId] {
        self.layer(m).down(s)
    }

    /// Full specialization to the data graph: all `G⁰` vertices whose
    /// `χᵐ` image is `s`.
    pub fn spec_to_base(&self, s: VId, m: usize) -> Vec<VId> {
        let mut frontier = vec![s];
        for i in (1..=m).rev() {
            let mut next = Vec::new();
            for &x in &frontier {
                next.extend_from_slice(self.layer(i).down(x));
            }
            frontier = next;
        }
        frontier
    }

    /// Generalizes a label to layer `m`: `Genᵐ(q) = Cᵐ(…C¹(q)…)`.
    pub fn generalize_label(&self, l: LabelId, m: usize) -> LabelId {
        let mut cur = l;
        for i in 1..=m {
            let map = &self.layer(i).label_map;
            cur = map.get(cur.index()).copied().unwrap_or(cur);
        }
        cur
    }

    /// Precomputed label supports of the graph at layer `m`.
    pub fn support_at(&self, m: usize) -> &LabelSupport {
        &self.supports[m]
    }

    /// Number of data-graph vertices whose label generalizes to `l` at
    /// layer `m` (the specialization mass behind a layer-`m` keyword
    /// match). At `m = 0` this is the plain label count.
    pub fn generalized_mass(&self, l: LabelId, m: usize) -> u64 {
        self.gen_mass[m].get(l.index()).copied().unwrap_or(0)
    }

    /// Sizes `|Gⁱ|` for `i = 0..=h` (Fig. 9 / Tab. 3 raw data).
    pub fn layer_sizes(&self) -> Vec<usize> {
        let mut out = vec![self.base.size()];
        out.extend(self.layers.iter().map(Layer::size));
        out
    }

    /// Size ratio of layer `m` to the data graph (`|Gᵐ|/|G⁰|`).
    pub fn size_ratio(&self, m: usize) -> f64 {
        if self.base.size() == 0 {
            return 1.0;
        }
        self.graph_at(m).size() as f64 / self.base.size() as f64
    }

    /// Total index size: the sum of summary-graph sizes (Exp-3: "the
    /// BiG-index size is simply the sum of the summary graphs").
    pub fn total_index_size(&self) -> usize {
        self.layers.iter().map(Layer::size).sum()
    }

    /// Runs the full `bgi-verify` invariant suite against this index
    /// and returns the structured diagnostic report.
    ///
    /// Debug builds (and release builds with the `validate` feature)
    /// run this automatically at the end of every build and panic on a
    /// dirty report; call it directly to get the diagnostics without
    /// the panic (e.g. the `bgi verify` CLI subcommand).
    pub fn verify(&self) -> bgi_verify::Report {
        bgi_verify::check_index(self)
    }
}

/// Equality over the stored parts only — the derived tables
/// (`supports`, `gen_mass`) are functions of these, so comparing them
/// would be redundant. This is what the persistence round-trip tests
/// assert.
impl PartialEq for BiGIndex {
    fn eq(&self, other: &Self) -> bool {
        self.base == other.base
            && self.ontology == other.ontology
            && self.layers == other.layers
            && self.direction == other.direction
            && self.summarizer == other.summarizer
    }
}

impl Eq for BiGIndex {}

impl bgi_verify::IndexView for BiGIndex {
    fn ontology(&self) -> &Ontology {
        &self.ontology
    }

    fn num_layers(&self) -> usize {
        self.layers.len()
    }

    fn graph_at(&self, m: usize) -> &DiGraph {
        BiGIndex::graph_at(self, m)
    }

    fn config_mappings(&self, m: usize) -> &[(LabelId, LabelId)] {
        self.layer(m).config.mappings()
    }

    fn label_map(&self, m: usize) -> &[LabelId] {
        &self.layer(m).label_map
    }

    fn up(&self, m: usize, v: VId) -> VId {
        self.layer(m).up(v)
    }

    fn down(&self, m: usize, s: VId) -> &[VId] {
        self.layer(m).down(s)
    }

    fn direction(&self) -> BisimDirection {
        self.direction
    }

    fn is_maximal_summarizer(&self) -> bool {
        matches!(self.summarizer, Summarizer::Maximal)
    }

    fn support_count(&self, m: usize, l: LabelId) -> u32 {
        self.supports[m].count(l)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgi_graph::{GraphBuilder, OntologyBuilder};

    /// Fig. 1-like: two person subtypes pointing at two univ subtypes,
    /// univs pointing at states.
    fn setup() -> (DiGraph, Ontology) {
        let mut gb = GraphBuilder::new();
        // Labels: 0=Person, 1=Prof, 2=Student, 3=Univ, 4=PubUniv,
        // 5=PrivUniv, 6=State.
        let pub_u = gb.add_vertex(LabelId(4));
        let priv_u = gb.add_vertex(LabelId(5));
        let state = gb.add_vertex(LabelId(6));
        gb.add_edge(pub_u, state);
        gb.add_edge(priv_u, state);
        for i in 0..30 {
            let l = if i % 2 == 0 { LabelId(1) } else { LabelId(2) };
            let v = gb.add_vertex(l);
            gb.add_edge(v, if i % 3 == 0 { pub_u } else { priv_u });
        }
        let g = gb.build();
        let mut ob = OntologyBuilder::new(7);
        ob.add_subtype(LabelId(0), LabelId(1));
        ob.add_subtype(LabelId(0), LabelId(2));
        ob.add_subtype(LabelId(3), LabelId(4));
        ob.add_subtype(LabelId(3), LabelId(5));
        let o = ob.build().unwrap();
        (g, o)
    }

    #[test]
    fn builds_layers_that_shrink() {
        let (g, o) = setup();
        let idx = BiGIndex::build(g.clone(), o, &BuildParams::default());
        assert!(idx.num_layers() >= 1);
        let sizes = idx.layer_sizes();
        assert_eq!(sizes[0], g.size());
        for w in sizes.windows(2) {
            assert!(
                w[1] <= w[0],
                "layer sizes must be non-increasing: {sizes:?}"
            );
        }
        assert!(sizes[idx.num_layers()] < sizes[0]);
    }

    #[test]
    fn chi_and_spec_are_inverse() {
        let (g, o) = setup();
        let idx = BiGIndex::build(g.clone(), o, &BuildParams::default());
        let m = idx.num_layers();
        for v in g.vertices() {
            let s = idx.chi(v, m);
            assert!(idx.spec_to_base(s, m).contains(&v));
        }
        // spec_to_base covers each base vertex exactly once.
        let mut all: Vec<VId> = idx
            .graph_at(m)
            .vertices()
            .flat_map(|s| idx.spec_to_base(s, m))
            .collect();
        all.sort_unstable();
        assert_eq!(all, g.vertices().collect::<Vec<_>>());
    }

    #[test]
    fn generalize_label_follows_configs() {
        let (g, o) = setup();
        let idx = BiGIndex::build(g, o, &BuildParams::default());
        if idx.num_layers() >= 1 {
            let g1 = idx.generalize_label(LabelId(1), 1);
            // Either generalized to Person (0) or untouched, depending on
            // the greedy config; at some layer it should reach 0.
            let top = idx.generalize_label(LabelId(1), idx.num_layers());
            assert!(g1 == LabelId(0) || g1 == LabelId(1));
            assert_eq!(top, LabelId(0));
        }
    }

    #[test]
    fn labels_at_layer_match_generalization() {
        let (g, o) = setup();
        let idx = BiGIndex::build(g.clone(), o, &BuildParams::default());
        for m in 1..=idx.num_layers() {
            let gm = idx.graph_at(m);
            for v in g.vertices() {
                let s = idx.chi(v, m);
                assert_eq!(
                    gm.label(s),
                    idx.generalize_label(g.label(v), m),
                    "layer {m}"
                );
            }
        }
    }

    #[test]
    fn path_preservation_through_all_layers() {
        let (g, o) = setup();
        let idx = BiGIndex::build(g.clone(), o, &BuildParams::default());
        for m in 1..=idx.num_layers() {
            let gm = idx.graph_at(m);
            for (u, v) in g.edges() {
                assert!(
                    gm.has_edge(idx.chi(u, m), idx.chi(v, m)),
                    "edge lost at layer {m}"
                );
            }
        }
    }

    #[test]
    fn explicit_configs_build() {
        let (g, o) = setup();
        let c1 = GenConfig::new(
            [
                (LabelId(1), LabelId(0)),
                (LabelId(2), LabelId(0)),
                (LabelId(4), LabelId(3)),
                (LabelId(5), LabelId(3)),
            ],
            &o,
        )
        .unwrap();
        let idx = BiGIndex::build_with_configs(g.clone(), o, vec![c1], BisimDirection::Forward);
        assert_eq!(idx.num_layers(), 1);
        // All persons collapse per univ-target pattern; graph shrinks a lot.
        assert!(idx.graph_at(1).num_vertices() <= 8);
        assert_eq!(idx.generalize_label(LabelId(2), 1), LabelId(0));
    }

    #[test]
    fn parallel_build_equals_serial_build() {
        let (g, o) = setup();
        let serial = BiGIndex::build(g.clone(), o.clone(), &BuildParams::default());
        for threads in [2usize, 4, 8] {
            let params = BuildParams {
                threads,
                ..BuildParams::default()
            };
            let parallel = BiGIndex::build(g.clone(), o.clone(), &params);
            // PartialEq covers every stored part: base graph, ontology,
            // layer configs, label maps, summary graphs, χ/Bisim⁻¹.
            assert!(serial == parallel, "{threads}-thread build diverged");
        }
    }

    #[test]
    fn max_layers_respected() {
        let (g, o) = setup();
        let params = BuildParams {
            max_layers: 1,
            ..BuildParams::default()
        };
        let idx = BiGIndex::build(g, o, &params);
        assert!(idx.num_layers() <= 1);
    }

    #[test]
    fn total_index_size_sums_layers() {
        let (g, o) = setup();
        let idx = BiGIndex::build(g, o, &BuildParams::default());
        let total: usize = (1..=idx.num_layers()).map(|m| idx.graph_at(m).size()).sum();
        assert_eq!(idx.total_index_size(), total);
    }
}

#[cfg(test)]
mod summarizer_tests {
    use super::*;
    use bgi_graph::{GraphBuilder, OntologyBuilder};
    use bgi_search::{Banks, KeywordQuery};

    /// Deep chains of same-typed vertices: maximal bisim distinguishes
    /// by depth, k-bounded collapses beyond depth k.
    fn chains() -> (DiGraph, Ontology) {
        let mut gb = GraphBuilder::new();
        for _ in 0..10 {
            let mut prev = gb.add_vertex(LabelId(1));
            for _ in 0..6 {
                let next = gb.add_vertex(LabelId(1));
                gb.add_edge(prev, next);
                prev = next;
            }
        }
        let g = gb.build();
        let mut ob = OntologyBuilder::new(2);
        ob.add_subtype(LabelId(0), LabelId(1));
        (g, ob.build().unwrap())
    }

    #[test]
    fn kbounded_compresses_more_than_maximal() {
        let (g, o) = chains();
        let c = GenConfig::new([(LabelId(1), LabelId(0))], &o).unwrap();
        let maximal = BiGIndex::build_with_configs(
            g.clone(),
            o.clone(),
            vec![c.clone()],
            BisimDirection::Forward,
        );
        let bounded = BiGIndex::build_with_configs_summarizer(
            g,
            o,
            vec![c],
            BisimDirection::Forward,
            Summarizer::KBounded(2),
        );
        assert_eq!(bounded.summarizer(), Summarizer::KBounded(2));
        assert!(
            bounded.graph_at(1).size() < maximal.graph_at(1).size(),
            "k-bounded {} vs maximal {}",
            bounded.graph_at(1).size(),
            maximal.graph_at(1).size()
        );
    }

    #[test]
    fn kbounded_queries_remain_sound() {
        let (g, o) = chains();
        let c = GenConfig::new([(LabelId(1), LabelId(0))], &o).unwrap();
        let index = BiGIndex::build_with_configs_summarizer(
            g.clone(),
            o,
            vec![c],
            BisimDirection::Forward,
            Summarizer::KBounded(1),
        );
        let boosted = crate::Boosted::new(&index, Banks, crate::EvalOptions::default());
        let q = KeywordQuery::new(vec![LabelId(1)], 2);
        let r = boosted.query(&q, 10);
        for a in &r.answers {
            assert!(a.validate(&g, &q.keywords));
        }
    }
}
