//! Algo. 1: one-step greedy heuristic for a maximal configuration.
//!
//! Computing the cost-optimal configuration is NP-hard (Thm. 3.1, by
//! reduction from maxSAT), so construction is greedy: estimate the cost
//! of every single-mapping candidate `(ℓ → ℓ')` (for labels `ℓ` present
//! in the graph with a direct supertype `ℓ'`), process candidates in
//! ascending estimated cost, and accept each whose addition keeps the
//! combined cost within the threshold `θ`, stopping at the budget `Π`.

use crate::compress::CompressEstimator;
use crate::config::GenConfig;
use crate::cost::{construction_cost_capped, CostParams};
use bgi_graph::par::par_map;
use bgi_graph::stats::LabelSupport;
use bgi_graph::{DiGraph, LabelId, Ontology};

/// Samples used to rank singleton candidates (ordering only).
const RANK_SAMPLES: usize = 64;
/// Samples used for the acceptance checks of Algo. 1's loop.
const ACCEPT_SAMPLES: usize = 64;

/// Runs Algo. 1: returns the greedy configuration for one layer.
///
/// `estimator` carries the sampled subgraphs used for compression
/// estimates; `support` the label supports of `g`.
pub fn greedy_configuration(
    g: &DiGraph,
    ontology: &Ontology,
    estimator: &CompressEstimator,
    support: &LabelSupport,
    params: &CostParams,
) -> GenConfig {
    greedy_configuration_threaded(g, ontology, estimator, support, params, 1)
}

/// [`greedy_configuration`] with the candidate-ranking pass — the bulk
/// of Algo. 1's cost, one compression estimate per `(ℓ → ℓ')` pair —
/// fanned out over up to `threads` scoped workers.
///
/// Each candidate's estimated cost is independent of every other's, and
/// results are collected back in candidate order before the (inherently
/// sequential) greedy acceptance loop runs, so the returned
/// configuration is identical for every thread count.
pub fn greedy_configuration_threaded(
    g: &DiGraph,
    ontology: &Ontology,
    estimator: &CompressEstimator,
    support: &LabelSupport,
    params: &CostParams,
    threads: usize,
) -> GenConfig {
    // Candidate single-mapping generalizations: every label present in
    // the graph paired with each of its direct supertypes.
    let counts = g.label_counts();
    let mut pairs: Vec<(LabelId, LabelId)> = Vec::new();
    for (i, &count) in counts.iter().enumerate() {
        if count == 0 {
            continue;
        }
        let l = LabelId(i as u32);
        if l.index() >= ontology.num_labels() {
            continue;
        }
        for &sup in ontology.direct_supertypes(l) {
            pairs.push((l, sup));
        }
    }
    let costs = par_map(threads, pairs.len(), |i| {
        let (l, sup) = pairs[i];
        let single =
            GenConfig::new([(l, sup)], ontology).expect("direct supertype by construction");
        construction_cost_capped(estimator, support, &single, params.alpha, RANK_SAMPLES)
    });
    let mut candidates: Vec<(f64, LabelId, LabelId)> = costs
        .into_iter()
        .zip(&pairs)
        .map(|(cost, &(l, sup))| (cost, l, sup))
        .collect();
    // Priority order: ascending estimated cost (ties by label for
    // determinism).
    candidates.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));

    let mut config = GenConfig::empty();
    for (_, l, sup) in candidates {
        if config.len() >= params.pi {
            break;
        }
        // A label may appear with several supertypes; keep the first
        // (cheapest) accepted mapping.
        if config.apply(l) != l {
            continue;
        }
        let mut trial = config.clone();
        trial.insert(l, sup);
        let cost =
            construction_cost_capped(estimator, support, &trial, params.alpha, ACCEPT_SAMPLES);
        if cost <= params.theta {
            config = trial;
        } else {
            // Algo. 1 returns as soon as a candidate overshoots θ.
            return config;
        }
    }
    config
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgi_bisim::BisimDirection;
    use bgi_graph::sampling::SamplingParams;
    use bgi_graph::{GraphBuilder, OntologyBuilder};

    /// Two person subtypes pointing at a hub; generalizing them enables
    /// compression.
    fn setup() -> (DiGraph, Ontology) {
        let mut gb = GraphBuilder::new();
        let hub = gb.add_vertex(LabelId(3));
        for i in 0..40 {
            let l = if i % 2 == 0 { LabelId(1) } else { LabelId(2) };
            let v = gb.add_vertex(l);
            gb.add_edge(v, hub);
        }
        let g = gb.build();
        let mut ob = OntologyBuilder::new(4);
        ob.add_subtype(LabelId(0), LabelId(1));
        ob.add_subtype(LabelId(0), LabelId(2));
        let o = ob.build().unwrap();
        (g, o)
    }

    fn estimator(g: &DiGraph) -> CompressEstimator {
        CompressEstimator::new(
            g,
            &SamplingParams {
                radius: 2,
                num_samples: 40,
                max_ball: 256,
                seed: 1,
            },
            BisimDirection::Forward,
        )
    }

    #[test]
    fn greedy_finds_compressing_mappings() {
        let (g, o) = setup();
        let est = estimator(&g);
        let support = LabelSupport::new(&g);
        let config = greedy_configuration(&g, &o, &est, &support, &CostParams::default());
        assert_eq!(config.apply(LabelId(1)), LabelId(0));
        assert_eq!(config.apply(LabelId(2)), LabelId(0));
    }

    #[test]
    fn threaded_greedy_matches_serial() {
        let (g, o) = setup();
        let est = estimator(&g);
        let support = LabelSupport::new(&g);
        let serial = greedy_configuration(&g, &o, &est, &support, &CostParams::default());
        for threads in [2usize, 4, 8] {
            let parallel = greedy_configuration_threaded(
                &g,
                &o,
                &est,
                &support,
                &CostParams::default(),
                threads,
            );
            assert_eq!(serial.mappings(), parallel.mappings(), "{threads} threads");
        }
    }

    #[test]
    fn pi_budget_caps_config_size() {
        let (g, o) = setup();
        let est = estimator(&g);
        let support = LabelSupport::new(&g);
        let params = CostParams {
            pi: 1,
            ..CostParams::default()
        };
        let config = greedy_configuration(&g, &o, &est, &support, &params);
        assert_eq!(config.len(), 1);
    }

    #[test]
    fn tight_theta_rejects_everything() {
        let (g, o) = setup();
        let est = estimator(&g);
        let support = LabelSupport::new(&g);
        let params = CostParams {
            theta: 0.0,
            ..CostParams::default()
        };
        let config = greedy_configuration(&g, &o, &est, &support, &params);
        assert!(config.is_empty());
    }

    #[test]
    fn no_supertypes_means_empty_config() {
        let g = bgi_graph::generate::uniform_random(30, 60, 3, 2);
        let o = OntologyBuilder::new(3).build().unwrap(); // flat ontology
        let est = estimator(&g);
        let support = LabelSupport::new(&g);
        let config = greedy_configuration(&g, &o, &est, &support, &CostParams::default());
        assert!(config.is_empty());
    }

    #[test]
    fn absent_labels_not_considered() {
        // Graph uses only label 3 (the hub label has no supertype);
        // labels 1, 2 absent -> nothing to generalize.
        let mut gb = GraphBuilder::new();
        gb.add_vertex(LabelId(3));
        let g = gb.build();
        let (_, o) = setup();
        let est = estimator(&g);
        let support = LabelSupport::new(&g);
        let config = greedy_configuration(&g, &o, &est, &support, &CostParams::default());
        assert!(config.is_empty());
    }
}
