//! Regenerates Figs. 13-14 (r-clique with and without BiG-index).
fn main() {
    let scale = bgi_bench::scale_from_env(20_000);
    let (report, _) = bgi_bench::experiments::query_perf::run_rclique(scale);
    println!("{report}");
}
