//! Regenerates Fig. 19 and the Exp-6 comparison.
fn main() {
    let scale = bgi_bench::scale_from_env(20_000);
    println!("{}", bgi_bench::experiments::layer_sweep::run(scale));
}
