//! Regenerates Figs. 10-12 (Blinks with and without BiG-index).
fn main() {
    let scale = bgi_bench::scale_from_env(20_000);
    let (report, _) = bgi_bench::experiments::query_perf::run_blinks(scale);
    println!("{report}");
}
