//! Parallel-construction thread sweep (1/2/4/8) over synt + yago.
//! Writes the gated metrics to `BENCH_build.json` (see `bench_gate`).
use bgi_bench::json;

fn main() {
    let scale = bgi_bench::scale_from_env(5_000);
    let (report, metrics) = bgi_bench::experiments::build_scaling::run(scale);
    println!("{report}");
    let path = json::artifact_path("BENCH_build.json");
    json::write_metrics(&path, "build_scaling", &metrics).expect("write BENCH_build.json");
    println!("wrote {}", path.display());
}
