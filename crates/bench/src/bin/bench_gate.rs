//! CI performance-regression gate.
//!
//! ```text
//! bench_gate ci/bench_baseline.json BENCH_build.json BENCH_throughput.json
//! ```
//!
//! Every numeric key ending in `_ms`, `_us`, or `_regret` (lower is
//! better) or in `_per_s` — or containing `_qps` anywhere, as in
//! `sharded_qps_4shards` (higher is better) — that appears in both the
//! baseline and a current artifact is compared. The gate fails (exit 1)
//! when a lower-is-better metric exceeds `baseline * factor`, or a
//! higher-is-better metric drops below `baseline / factor`. The factor
//! defaults to 1.3 (the 30% budget from CONTRIBUTING.md) and can be
//! overridden with `BGI_BENCH_GATE_FACTOR`. A gated baseline key
//! missing from every current artifact also fails — a metric cannot
//! silently stop being measured.
//!
//! `BGI_BENCH_GATE_INJECT=<x>` simulates an `x`-fold slowdown before
//! comparing: it multiplies lower-is-better values and *divides*
//! higher-is-better ones (a slow system takes more microseconds and
//! sustains fewer ops per second). CI runs the gate a second time with
//! `2.0` and asserts it exits non-zero, so every green run also proves
//! the gate still trips on a 2x slowdown — in both directions.
//!
//! When `GITHUB_STEP_SUMMARY` names a file, the per-metric
//! baseline-vs-measured delta table is also appended there as GitHub
//! markdown, so the comparison shows up on the workflow run page
//! without digging through logs.
use bgi_bench::json::{self, Value};
use std::collections::BTreeMap;
use std::io::Write as _;
use std::process::ExitCode;

/// Direction of a gated metric: which way is a regression?
#[derive(Clone, Copy, PartialEq, Eq)]
enum Direction {
    /// `_ms` / `_us` / `_regret`: regression when current grows.
    LowerIsBetter,
    /// `_per_s` / `_qps`: regression when current shrinks.
    HigherIsBetter,
}

fn direction(key: &str) -> Option<Direction> {
    if key.ends_with("_ms") || key.ends_with("_us") || key.ends_with("_regret") {
        Some(Direction::LowerIsBetter)
    } else if key.ends_with("_per_s") || key.contains("_qps") {
        // `_qps` is matched anywhere in the key: the sharded sweep
        // names its points `sharded_qps_<n>shards`.
        Some(Direction::HigherIsBetter)
    } else {
        None
    }
}

/// One compared metric, shared by the console table, the exit code and
/// the step-summary markdown.
struct Row {
    key: String,
    base: f64,
    /// Inject-adjusted current value; `None` when not measured.
    cur: Option<f64>,
    /// `current / baseline` (so >1 is slower for `_us`, faster for
    /// `_per_s`); `None` when not measured.
    ratio: Option<f64>,
    ok: bool,
}

fn load(path: &str) -> BTreeMap<String, Value> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("bench_gate: cannot read {path}: {e}"));
    json::parse_flat(&text).unwrap_or_else(|e| panic!("bench_gate: cannot parse {path}: {e}"))
}

fn env_factor(name: &str, default: f64) -> f64 {
    match std::env::var(name) {
        Ok(s) => s
            .trim()
            .parse::<f64>()
            .unwrap_or_else(|e| panic!("bench_gate: bad {name}={s:?}: {e}")),
        Err(_) => default,
    }
}

/// Append the delta table to `$GITHUB_STEP_SUMMARY` when it names a
/// file. Best-effort: a summary write failure must not flip the gate.
fn write_step_summary(rows: &[Row], factor: f64, inject: f64, failures: usize) {
    let Ok(path) = std::env::var("GITHUB_STEP_SUMMARY") else {
        return;
    };
    if path.trim().is_empty() {
        return;
    }
    let mut md = String::new();
    md.push_str("### Bench gate\n\n");
    if inject != 1.0 {
        md.push_str(&format!(
            "_Injected {inject}x slowdown (`BGI_BENCH_GATE_INJECT`) — self-test run._\n\n"
        ));
    }
    md.push_str("| metric | baseline | measured | ratio | status |\n");
    md.push_str("|---|---:|---:|---:|---|\n");
    for row in rows {
        let (cur, ratio) = match (row.cur, row.ratio) {
            (Some(c), Some(r)) => (format!("{c:.1}"), format!("{r:.2}x")),
            _ => ("—".to_string(), "—".to_string()),
        };
        let status = match (row.ok, row.cur.is_some()) {
            (true, _) => "✅ ok",
            (false, true) => "❌ regressed",
            (false, false) => "❌ not measured",
        };
        md.push_str(&format!(
            "| `{}` | {:.1} | {} | {} | {} |\n",
            row.key, row.base, cur, ratio, status
        ));
    }
    md.push_str(&format!(
        "\n{} metric(s) checked against a {factor:.2}x budget; {failures} regression(s).\n",
        rows.len()
    ));
    let written = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| f.write_all(md.as_bytes()));
    if let Err(e) = written {
        eprintln!("bench_gate: cannot append step summary to {path}: {e}");
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 2 {
        eprintln!("usage: bench_gate <baseline.json> <current.json>...");
        return ExitCode::from(2);
    }
    let factor = env_factor("BGI_BENCH_GATE_FACTOR", 1.3);
    let inject = env_factor("BGI_BENCH_GATE_INJECT", 1.0);
    if inject != 1.0 {
        println!("bench_gate: BGI_BENCH_GATE_INJECT={inject} (simulating a slowdown)");
    }
    let baseline = load(&args[0]);
    let mut current: BTreeMap<String, f64> = BTreeMap::new();
    for path in &args[1..] {
        for (k, v) in load(path) {
            if let Some(x) = v.as_num() {
                current.insert(k, x);
            }
        }
    }

    let mut rows: Vec<Row> = Vec::new();
    println!(
        "{:<28} {:>12} {:>12} {:>8}  status (budget {factor:.2}x)",
        "metric", "baseline", "current", "ratio"
    );
    for (key, value) in &baseline {
        let Some(base) = value.as_num() else { continue };
        let Some(dir) = direction(key) else { continue };
        if base <= 0.0 {
            continue;
        }
        match current.get(key) {
            None => {
                println!(
                    "{key:<28} {base:>12.1} {:>12} {:>8}  FAIL (not measured)",
                    "-", "-"
                );
                rows.push(Row {
                    key: key.clone(),
                    base,
                    cur: None,
                    ratio: None,
                    ok: false,
                });
            }
            Some(&raw) => {
                // A simulated slowdown inflates latencies and deflates
                // throughputs — the injection must trip both kinds.
                let cur = match dir {
                    Direction::LowerIsBetter => raw * inject,
                    Direction::HigherIsBetter => raw / inject,
                };
                let ratio = cur / base;
                let ok = match dir {
                    Direction::LowerIsBetter => ratio <= factor,
                    Direction::HigherIsBetter => ratio >= 1.0 / factor,
                };
                println!(
                    "{key:<28} {base:>12.1} {cur:>12.1} {ratio:>7.2}x  {}",
                    if ok { "ok" } else { "FAIL" }
                );
                rows.push(Row {
                    key: key.clone(),
                    base,
                    cur: Some(cur),
                    ratio: Some(ratio),
                    ok,
                });
            }
        }
    }
    for key in current
        .keys()
        .filter(|k| direction(k).is_some() && !baseline.contains_key(*k))
    {
        println!("{key:<28} (no baseline — add it to ci/bench_baseline.json)");
    }
    let failures = rows.iter().filter(|r| !r.ok).count();
    write_step_summary(&rows, factor, inject, failures);
    if rows.is_empty() {
        eprintln!("bench_gate: baseline has no gated (_ms/_us/_regret/_per_s) metrics");
        return ExitCode::from(2);
    }
    if failures > 0 {
        eprintln!(
            "bench_gate: {failures} metric(s) regressed beyond {factor:.2}x \
             (override: see CONTRIBUTING.md, label `skip-perf-gate`)"
        );
        return ExitCode::FAILURE;
    }
    println!("bench_gate: {} metric(s) within budget", rows.len());
    ExitCode::SUCCESS
}
