//! CI performance-regression gate.
//!
//! ```text
//! bench_gate ci/bench_baseline.json BENCH_build.json BENCH_throughput.json
//! ```
//!
//! Every numeric key ending in `_ms`, `_us`, or `_regret` (lower is
//! better) that appears in both the baseline and a current artifact is
//! compared;
//! the gate fails (exit 1) when `current > baseline * factor`. The
//! factor defaults to 1.3 (the 30% budget from CONTRIBUTING.md) and
//! can be overridden with `BGI_BENCH_GATE_FACTOR`. A gated baseline
//! key missing from every current artifact also fails — a metric
//! cannot silently stop being measured.
//!
//! `BGI_BENCH_GATE_INJECT=<x>` multiplies every current gated value by
//! `x` before comparing. CI runs the gate a second time with `2.0`
//! and asserts it exits non-zero, so every green run also proves the
//! gate still trips on a 2x slowdown.
use bgi_bench::json::{self, Value};
use std::collections::BTreeMap;
use std::process::ExitCode;

fn is_gated(key: &str) -> bool {
    key.ends_with("_ms") || key.ends_with("_us") || key.ends_with("_regret")
}

fn load(path: &str) -> BTreeMap<String, Value> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("bench_gate: cannot read {path}: {e}"));
    json::parse_flat(&text).unwrap_or_else(|e| panic!("bench_gate: cannot parse {path}: {e}"))
}

fn env_factor(name: &str, default: f64) -> f64 {
    match std::env::var(name) {
        Ok(s) => s
            .trim()
            .parse::<f64>()
            .unwrap_or_else(|e| panic!("bench_gate: bad {name}={s:?}: {e}")),
        Err(_) => default,
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 2 {
        eprintln!("usage: bench_gate <baseline.json> <current.json>...");
        return ExitCode::from(2);
    }
    let factor = env_factor("BGI_BENCH_GATE_FACTOR", 1.3);
    let inject = env_factor("BGI_BENCH_GATE_INJECT", 1.0);
    if inject != 1.0 {
        println!("bench_gate: BGI_BENCH_GATE_INJECT={inject} (simulating a slowdown)");
    }
    let baseline = load(&args[0]);
    let mut current: BTreeMap<String, f64> = BTreeMap::new();
    for path in &args[1..] {
        for (k, v) in load(path) {
            if let Some(x) = v.as_num() {
                current.insert(k, x);
            }
        }
    }

    let mut failures = 0usize;
    let mut checked = 0usize;
    println!(
        "{:<24} {:>12} {:>12} {:>8}  status (budget {factor:.2}x)",
        "metric", "baseline", "current", "ratio"
    );
    for (key, value) in &baseline {
        let Some(base) = value.as_num() else { continue };
        if !is_gated(key) || base <= 0.0 {
            continue;
        }
        checked += 1;
        match current.get(key) {
            None => {
                failures += 1;
                println!(
                    "{key:<24} {base:>12.1} {:>12} {:>8}  FAIL (not measured)",
                    "-", "-"
                );
            }
            Some(&raw) => {
                let cur = raw * inject;
                let ratio = cur / base;
                let ok = ratio <= factor;
                if !ok {
                    failures += 1;
                }
                println!(
                    "{key:<24} {base:>12.1} {cur:>12.1} {ratio:>7.2}x  {}",
                    if ok { "ok" } else { "FAIL" }
                );
            }
        }
    }
    for key in current
        .keys()
        .filter(|k| is_gated(k) && !baseline.contains_key(*k))
    {
        println!("{key:<24} (no baseline — add it to ci/bench_baseline.json)");
    }
    if checked == 0 {
        eprintln!("bench_gate: baseline has no gated (_ms/_us/_regret) metrics");
        return ExitCode::from(2);
    }
    if failures > 0 {
        eprintln!(
            "bench_gate: {failures} metric(s) regressed beyond {factor:.2}x \
             (override: see CONTRIBUTING.md, label `skip-perf-gate`)"
        );
        return ExitCode::FAILURE;
    }
    println!("bench_gate: {checked} metric(s) within budget");
    ExitCode::SUCCESS
}
