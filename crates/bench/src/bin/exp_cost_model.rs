//! Regenerates Fig. 16 and the Exp-4 cost-model studies.
fn main() {
    let scale = bgi_bench::scale_from_env(20_000);
    println!("{}", bgi_bench::experiments::cost_model::run(scale));
}
