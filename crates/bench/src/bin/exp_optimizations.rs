//! Regenerates Figs. 17-18 and the isKey ablation (Exp-5).
fn main() {
    let scale = bgi_bench::scale_from_env(20_000);
    println!("{}", bgi_bench::experiments::optimizations::run(scale));
}
