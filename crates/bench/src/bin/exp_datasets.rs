//! Regenerates Tab. 2 and Tab. 4.
fn main() {
    let scale = bgi_bench::scale_from_env(20_000);
    println!("{}", bgi_bench::experiments::datasets::run(scale));
}
