//! Regenerates the design-choice ablations (DESIGN.md §7).
fn main() {
    let scale = bgi_bench::scale_from_env(20_000);
    println!("{}", bgi_bench::experiments::ablations::run(scale));
}
