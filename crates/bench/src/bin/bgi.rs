//! `bgi` — command-line front end for the BiG-index reproduction.
//!
//! ```text
//! bgi gen <yago|dbpedia|imdb|synt> <scale> <dir>   generate + save a dataset
//! bgi stats <dir>                                  dataset statistics
//! bgi build <dir> [layers]                         build the index, print layer sizes
//! bgi workload <dir>                               print the Q1-Q8 workload
//! bgi query <dir> <kw1,kw2,...> [dmax] [k]         run a boosted BLINKS query
//! bgi verify <dir> [layers]                        build, then check every index invariant
//! ```

use bgi_datasets::{benchmark_queries, persist, Dataset, DatasetSpec};
use bgi_search::blinks::{Blinks, BlinksParams};
use bgi_search::KeywordQuery;
use big_index::{Boosted, EvalOptions};
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("gen") => cmd_gen(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("build") => cmd_build(&args[1..]),
        Some("workload") => cmd_workload(&args[1..]),
        Some("query") => cmd_query(&args[1..]),
        Some("verify") => cmd_verify(&args[1..]),
        _ => {
            eprintln!(
                "usage: bgi <gen|stats|build|workload|query|verify> ...\n\
                 \n\
                 bgi gen <yago|dbpedia|imdb|synt> <scale> <dir>\n\
                 bgi stats <dir>\n\
                 bgi build <dir> [layers]\n\
                 bgi workload <dir>\n\
                 bgi query <dir> <kw1,kw2,...> [dmax] [k]\n\
                 bgi verify <dir> [layers]"
            );
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

type CliResult = Result<(), Box<dyn std::error::Error>>;

fn cmd_gen(args: &[String]) -> CliResult {
    let [kind, scale, dir] = args else {
        return Err("usage: bgi gen <yago|dbpedia|imdb|synt> <scale> <dir>".into());
    };
    let scale: usize = scale.parse()?;
    let spec = match kind.as_str() {
        "yago" => DatasetSpec::yago_like(scale),
        "dbpedia" => DatasetSpec::dbpedia_like(scale),
        "imdb" => DatasetSpec::imdb_like(scale),
        "synt" => DatasetSpec::synt(scale),
        other => return Err(format!("unknown dataset kind '{other}'").into()),
    };
    let ds = spec.generate();
    persist::save(&ds, Path::new(dir))?;
    println!(
        "wrote {} (|V| = {}, |E| = {}, {} ontology labels) to {dir}",
        ds.name,
        ds.num_vertices(),
        ds.num_edges(),
        ds.ontology.num_labels()
    );
    Ok(())
}

fn load(dir: &str) -> Result<Dataset, Box<dyn std::error::Error>> {
    Ok(persist::load(Path::new(dir))?)
}

fn cmd_stats(args: &[String]) -> CliResult {
    let [dir] = args else {
        return Err("usage: bgi stats <dir>".into());
    };
    let ds = load(dir)?;
    let deg = bgi_graph::stats::degree_stats(&ds.graph);
    println!("dataset:    {}", ds.name);
    println!("|V|:        {}", ds.num_vertices());
    println!("|E|:        {}", ds.num_edges());
    println!("labels:     {}", ds.labels.len());
    println!(
        "ontology:   {} labels, {} edges, height {}",
        ds.ontology.num_labels(),
        ds.ontology.num_edges(),
        ds.ontology.height()
    );
    println!("mean deg:   {:.2}", deg.mean_out);
    println!("max out/in: {} / {}", deg.max_out, deg.max_in);
    Ok(())
}

fn cmd_build(args: &[String]) -> CliResult {
    let (dir, layers) = match args {
        [dir] => (dir, 7usize),
        [dir, layers] => (dir, layers.parse()?),
        _ => return Err("usage: bgi build <dir> [layers]".into()),
    };
    let ds = load(dir)?;
    let (index, took) = bgi_bench::setup::default_index(&ds, layers);
    println!("built {} layers in {:?}", index.num_layers(), took);
    for (m, size) in index.layer_sizes().iter().enumerate() {
        println!("  L{m}: |G| = {size} (ratio {:.4})", index.size_ratio(m));
    }
    Ok(())
}

fn cmd_workload(args: &[String]) -> CliResult {
    let [dir] = args else {
        return Err("usage: bgi workload <dir>".into());
    };
    let ds = load(dir)?;
    let min_count = (ds.num_vertices() / 100).max(3) as u32;
    for q in benchmark_queries(&ds, 5, min_count, 0xC0FFEE) {
        let names: Vec<&str> = q.keywords.iter().map(|&l| ds.labels.name(l)).collect();
        println!("{}: {} (counts {:?})", q.id, names.join(","), q.counts);
    }
    Ok(())
}

fn cmd_verify(args: &[String]) -> CliResult {
    let (dir, layers) = match args {
        [dir] => (dir, 7usize),
        [dir, layers] => (dir, layers.parse()?),
        _ => return Err("usage: bgi verify <dir> [layers]".into()),
    };
    let ds = load(dir)?;
    let (index, took) = bgi_bench::setup::default_index(&ds, layers);
    println!(
        "built {} layer(s) in {took:?}; checking invariants…",
        index.num_layers()
    );
    let report = index.verify();
    print!("{report}");
    if report.is_clean() {
        println!("index is clean");
        Ok(())
    } else {
        Err(format!(
            "{} invariant(s) violated ({} total violation(s))",
            report.failed().len(),
            report.total_violations()
        )
        .into())
    }
}

fn cmd_query(args: &[String]) -> CliResult {
    let (dir, kws, dmax, k) = match args {
        [dir, kws] => (dir, kws, 5u32, 10usize),
        [dir, kws, dmax] => (dir, kws, dmax.parse()?, 10usize),
        [dir, kws, dmax, k] => (dir, kws, dmax.parse()?, k.parse()?),
        _ => return Err("usage: bgi query <dir> <kw1,kw2,...> [dmax] [k]".into()),
    };
    let ds = load(dir)?;
    let keywords: Result<Vec<_>, _> = kws
        .split(',')
        .map(|name| {
            ds.labels
                .get(name.trim())
                .ok_or_else(|| format!("unknown keyword '{name}'"))
        })
        .collect();
    let query = KeywordQuery::new(keywords?, dmax);

    let (index, _) = bgi_bench::setup::default_index(&ds, 7);
    let blinks = Blinks::new(BlinksParams {
        block_size: 1000,
        prune_dist: dmax.max(5),
    });
    let boosted = Boosted::new(&index, blinks, EvalOptions::default());

    let t = std::time::Instant::now();
    let result = boosted.query(&query, k);
    let took = t.elapsed();
    println!(
        "layer {} ({}), {} answer(s) in {:?}:",
        result.layer,
        if result.fell_back {
            "fell back"
        } else {
            "chosen"
        },
        result.answers.len(),
        took
    );
    for (i, a) in result.answers.iter().enumerate() {
        let verts: Vec<String> = a
            .vertices
            .iter()
            .map(|&v| format!("{}({})", v.0, ds.labels.name(ds.graph.label(v))))
            .collect();
        println!(
            "  #{i} score={} root={:?}: {}",
            a.score,
            a.root,
            verts.join(" ")
        );
    }
    Ok(())
}
