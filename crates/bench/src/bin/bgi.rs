//! `bgi` — command-line front end for the BiG-index reproduction.
//!
//! ```text
//! bgi gen <yago|dbpedia|imdb|synt> <scale> <dir> [--seed S] [--updates N]   generate + save a dataset
//! bgi stats <dir>                                  dataset statistics
//! bgi build <dir> [layers] [--build-threads N]     build the index, print layer sizes
//! bgi workload <dir>                               print the Q1-Q8 workload
//! bgi query <dir> <kw1,kw2,...> [dmax] [k]         run a boosted BLINKS query
//! bgi verify <dir> [layers]                        build, then check every index invariant
//! bgi batch <dir> [--threads N] [--repeat R]       replay the workload through bgi-service
//! bgi serve <dir> [--threads N] [--tcp ADDR]       serve queries line-by-line (stdio or TCP)
//! bgi ingest <dir> --updates <file> [--batch N]    stream updates through the live-update engine
//! bgi save-index <dir> <store> [--layers L]        build the index once, persist it crash-safely
//!                               [--shards N]       ... as N shard hierarchies under one root
//! bgi load-index <store>                           recover + verify, skipping construction
//! bgi reload <store>                               dry-run recovery check (what would serve?)
//! ```
//!
//! Construction commands (`build`, `save-index`, `serve`, `batch`) take
//! `--build-threads N` to fan the parallelizable build stages — the
//! per-layer BANKS/BLINKS/r-clique index builds and, on `save-index`,
//! the store's section encodes — over N scoped workers. Every thread
//! count produces a byte-identical result (DESIGN.md §8); `--threads`
//! on `serve`/`batch` stays the *query worker* count, a different pool.
//!
//! `bgi serve <dir> --store <store>` boots from the persisted index
//! instead of rebuilding, and accepts a `reload` protocol line that
//! hot-swaps to the newest on-disk generation (rolling back to the
//! running snapshot if recovery or verification fails).
//!
//! `bgi serve` also accepts write verbs: `update <op>` buffers one
//! mutation (`insert <u> <v>` / `delete <u> <v>` / `addv <label>`),
//! `flush` applies the buffer through the live-update engine and swaps
//! the refreshed snapshot in, and `checkpoint` (with `--store`)
//! persists the updated index as a new generation and truncates the
//! WAL. With `--store`, updates are WAL-logged before they apply, and
//! boot replays any log tail left by a crash.
//!
//! **Sharded mode** (DESIGN.md §14): `save-index --shards N` cuts the
//! graph with the BFS-grown partitioner and persists one independent
//! hierarchy per shard; `serve` auto-detects a sharded root (or takes
//! `--shards N` to build one in memory) and answers every query by
//! scatter–gather over the shard snapshots; `batch --shards N` replays
//! the workload against an in-memory sharded deployment. Sharded
//! requests must keep `dmax` at or below the partition's halo ceiling
//! (`--dmax-ceiling`, default 4).

use bgi_datasets::{benchmark_queries, persist, update_stream, Dataset, DatasetSpec, UpdateMix};
use bgi_ingest::{Engine, EngineConfig, IngestUpdate};
use bgi_search::blinks::{Blinks, BlinksParams};
use bgi_search::{KeywordQuery, RClique};
use bgi_service::{
    boot_sharded, run_batch, snapshot_from_build, IndexSnapshot, QueryError, QueryRequest,
    Semantics, Service, ServiceConfig, ShardedWriteHub,
};
use bgi_shard::{build_shard_bundles, ShardBuildParams, ShardPlan, ShardSpec, ShardedStore};
use bgi_store::{IndexBundle, Store};
use big_index::{Boosted, EvalOptions};
use std::collections::HashMap;
use std::io::{BufRead, Write};
use std::path::Path;
use std::process::ExitCode;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("gen") => cmd_gen(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("build") => cmd_build(&args[1..]),
        Some("workload") => cmd_workload(&args[1..]),
        Some("query") => cmd_query(&args[1..]),
        Some("verify") => cmd_verify(&args[1..]),
        Some("batch") => cmd_batch(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("ingest") => cmd_ingest(&args[1..]),
        Some("save-index") => cmd_save_index(&args[1..]),
        Some("load-index") => cmd_load_index(&args[1..]),
        Some("reload") => cmd_reload(&args[1..]),
        _ => {
            eprintln!(
                "usage: bgi <gen|stats|build|workload|query|verify|batch|serve|ingest|save-index|load-index|reload> ...\n\
                 \n\
                 bgi gen <yago|dbpedia|imdb|synt> <scale> <dir> [--seed S] [--updates N] [--update-seed S]\n\
                 bgi stats <dir>\n\
                 bgi build <dir> [layers] [--build-threads N]\n\
                 bgi workload <dir>\n\
                 bgi query <dir> <kw1,kw2,...> [dmax] [k]\n\
                 bgi verify <dir> [layers]\n\
                 bgi batch <dir> [--threads N] [--repeat R] [--seed S] [--k K] [--dmax D] [--layers L] [--build-threads N] [--shards N] [--dmax-ceiling D]\n\
                 bgi serve <dir> [--threads N] [--layers L] [--tcp ADDR] [--store S] [--build-threads N] [--shards N] [--dmax-ceiling D]\n\
                 bgi ingest <dir> --updates <file> [--batch N] [--layers L] [--store S] [--build-threads N]\n\
                 bgi save-index <dir> <store> [--layers L] [--build-threads N] [--shards N] [--dmax-ceiling D]\n\
                 bgi load-index <store>\n\
                 bgi reload <store>"
            );
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

type CliResult = Result<(), Box<dyn std::error::Error>>;

fn cmd_gen(args: &[String]) -> CliResult {
    let (positional, flags) = parse_flags(args)?;
    let [kind, scale, dir] = positional.as_slice() else {
        return Err(
            "usage: bgi gen <yago|dbpedia|imdb|synt> <scale> <dir> [--seed S] [--updates N] \
             [--update-seed S]"
                .into(),
        );
    };
    let scale: usize = scale.parse()?;
    let mut spec = match *kind {
        "yago" => DatasetSpec::yago_like(scale),
        "dbpedia" => DatasetSpec::dbpedia_like(scale),
        "imdb" => DatasetSpec::imdb_like(scale),
        "synt" => DatasetSpec::synt(scale),
        other => return Err(format!("unknown dataset kind '{other}'").into()),
    };
    // Each preset has a fixed default seed; `--seed` overrides it so
    // two invocations can agree on — or deliberately vary — the graph.
    if let Some(seed) = flags.get("seed") {
        spec = spec.with_seed(seed.parse().map_err(|_| format!("bad --seed '{seed}'"))?);
    }
    let ds = spec.generate();
    persist::save(&ds, Path::new(dir))?;
    println!(
        "wrote {} (|V| = {}, |E| = {}, {} ontology labels) to {dir}",
        ds.name,
        ds.num_vertices(),
        ds.num_edges(),
        ds.ontology.num_labels()
    );
    // `--updates N` additionally emits a seeded, in-order-applicable
    // update stream for `bgi ingest` / the ingest benchmarks.
    let updates: usize = flag(&flags, "updates", 0)?;
    if updates > 0 {
        let update_seed: u64 = flag(&flags, "update-seed", 1)?;
        let stream = update_stream(&ds.graph, update_seed, updates, UpdateMix::default());
        let mut out = String::with_capacity(stream.len() * 12);
        for op in &stream {
            out.push_str(&op.to_line());
            out.push('\n');
        }
        let path = Path::new(dir).join("updates.txt");
        std::fs::write(&path, out)?;
        println!(
            "wrote {} update(s) (seed {update_seed}) to {}",
            stream.len(),
            path.display()
        );
    }
    Ok(())
}

fn load(dir: &str) -> Result<Dataset, Box<dyn std::error::Error>> {
    Ok(persist::load(Path::new(dir))?)
}

fn cmd_stats(args: &[String]) -> CliResult {
    let [dir] = args else {
        return Err("usage: bgi stats <dir>".into());
    };
    let ds = load(dir)?;
    let deg = bgi_graph::stats::degree_stats(&ds.graph);
    println!("dataset:    {}", ds.name);
    println!("|V|:        {}", ds.num_vertices());
    println!("|E|:        {}", ds.num_edges());
    println!("labels:     {}", ds.labels.len());
    println!(
        "ontology:   {} labels, {} edges, height {}",
        ds.ontology.num_labels(),
        ds.ontology.num_edges(),
        ds.ontology.height()
    );
    println!("mean deg:   {:.2}", deg.mean_out);
    println!("max out/in: {} / {}", deg.max_out, deg.max_in);
    Ok(())
}

fn cmd_build(args: &[String]) -> CliResult {
    let (positional, flags) = parse_flags(args)?;
    let (dir, layers) = match positional.as_slice() {
        [dir] => (*dir, 7usize),
        [dir, layers] => (*dir, layers.parse()?),
        _ => return Err("usage: bgi build <dir> [layers] [--build-threads N]".into()),
    };
    let build_threads: usize = flag(&flags, "build-threads", 1)?;
    let ds = load(dir)?;
    let (index, took) = bgi_bench::setup::default_index(&ds, layers);
    println!("built {} layers in {:?}", index.num_layers(), took);
    for (m, size) in index.layer_sizes().iter().enumerate() {
        println!("  L{m}: |G| = {size} (ratio {:.4})", index.size_ratio(m));
    }
    // The per-layer search indexes are what serving/persistence would
    // build next; they are the parallel stage `--build-threads` fans out.
    let t = Instant::now();
    let (banks, _, _) = bgi_store::build_layer_indexes(
        &index,
        BlinksParams::default(),
        RClique::default(),
        build_threads,
    );
    println!(
        "per-layer search indexes ({} layers x 3 algorithms) built in {:?} \
         on {build_threads} thread(s)",
        banks.len(),
        t.elapsed()
    );
    Ok(())
}

fn cmd_workload(args: &[String]) -> CliResult {
    let [dir] = args else {
        return Err("usage: bgi workload <dir>".into());
    };
    let ds = load(dir)?;
    let min_count = (ds.num_vertices() / 100).max(3) as u32;
    for q in benchmark_queries(&ds, 5, min_count, 0xC0FFEE) {
        let names: Vec<&str> = q.keywords.iter().map(|&l| ds.labels.name(l)).collect();
        println!("{}: {} (counts {:?})", q.id, names.join(","), q.counts);
    }
    Ok(())
}

fn cmd_verify(args: &[String]) -> CliResult {
    let (dir, layers) = match args {
        [dir] => (dir, 7usize),
        [dir, layers] => (dir, layers.parse()?),
        _ => return Err("usage: bgi verify <dir> [layers]".into()),
    };
    let ds = load(dir)?;
    let (index, took) = bgi_bench::setup::default_index(&ds, layers);
    println!(
        "built {} layer(s) in {took:?}; checking invariants…",
        index.num_layers()
    );
    let report = index.verify();
    print!("{report}");
    if report.is_clean() {
        println!("index is clean");
        Ok(())
    } else {
        Err(format!(
            "{} invariant(s) violated ({} total violation(s))",
            report.failed().len(),
            report.total_violations()
        )
        .into())
    }
}

/// Splits `args` into positional arguments and `--key value` flags.
fn parse_flags(args: &[String]) -> Result<(Vec<&str>, HashMap<&str, &str>), String> {
    let mut positional = Vec::new();
    let mut flags = HashMap::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if let Some(key) = a.strip_prefix("--") {
            let value = it.next().ok_or_else(|| format!("--{key} needs a value"))?;
            flags.insert(key, value.as_str());
        } else {
            positional.push(a.as_str());
        }
    }
    Ok((positional, flags))
}

fn flag<T: std::str::FromStr>(
    flags: &HashMap<&str, &str>,
    key: &str,
    default: T,
) -> Result<T, String> {
    match flags.get(key) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("bad --{key} value '{v}'")),
    }
}

/// Builds the default index over `ds` (per-layer search indexes fanned
/// over `build_threads`) and wraps it in a verified serving snapshot.
fn mono_snapshot(
    ds: &Dataset,
    layers: usize,
    build_threads: usize,
) -> Result<Arc<IndexSnapshot>, Box<dyn std::error::Error>> {
    let (index, took) = bgi_bench::setup::default_index(ds, layers);
    eprintln!(
        "index: {} layer(s) over {} vertices, built in {took:?}",
        index.num_layers(),
        ds.num_vertices()
    );
    let config = bgi_service::SnapshotConfig {
        threads: build_threads,
        ..bgi_service::SnapshotConfig::default()
    };
    Ok(Arc::new(IndexSnapshot::build(index, config)?))
}

/// Cuts `ds` into `spec.shards` partitions and builds one independent
/// hierarchy per shard — the in-memory half of `save-index --shards`,
/// shared by `serve --shards` and `batch --shards`.
fn build_sharded(
    ds: &Dataset,
    spec: &ShardSpec,
    layers: usize,
    build_threads: usize,
) -> Result<(ShardPlan, Vec<IndexBundle>), Box<dyn std::error::Error>> {
    let t = Instant::now();
    let plan = ShardPlan::build(&ds.graph, spec)?;
    let bundles = build_shard_bundles(
        &ds.graph,
        &ds.ontology,
        &plan,
        &ShardBuildParams {
            max_layers: layers,
            threads: build_threads,
            ..ShardBuildParams::default()
        },
    );
    eprintln!(
        "cut {} vertices into {} shard hierarchies (dmax ceiling {}) in {:?}",
        plan.num_vertices(),
        plan.num_shards(),
        plan.dmax_ceiling(),
        t.elapsed()
    );
    Ok((plan, bundles))
}

fn cmd_batch(args: &[String]) -> CliResult {
    let (positional, flags) = parse_flags(args)?;
    let [dir] = positional.as_slice() else {
        return Err(
            "usage: bgi batch <dir> [--threads N] [--repeat R] [--seed S] [--queries Q] [--k K] [--dmax D] [--layers L] [--build-threads N] [--shards N] [--dmax-ceiling D]"
                .into(),
        );
    };
    let threads: usize = flag(&flags, "threads", 4)?;
    let repeat: usize = flag(&flags, "repeat", 3)?;
    let seed: u64 = flag(&flags, "seed", bgi_bench::setup::DEFAULT_WORKLOAD_SEED)?;
    let queries: usize = flag(&flags, "queries", 32)?;
    let k: usize = flag(&flags, "k", 5)?;
    let dmax: u32 = flag(&flags, "dmax", 4)?;
    let layers: usize = flag(&flags, "layers", 4)?;
    let build_threads: usize = flag(&flags, "build-threads", 1)?;
    let shards: usize = flag(&flags, "shards", 0)?;

    let ds = load(dir)?;
    let requests = bgi_bench::experiments::throughput::seeded_requests(&ds, dmax, k, seed, queries);
    if requests.is_empty() {
        return Err("workload generator produced no queries for this dataset".into());
    }
    let config = ServiceConfig {
        workers: threads,
        ..ServiceConfig::default()
    };
    let service = if shards > 0 {
        let dmax_ceiling: u32 = flag(&flags, "dmax-ceiling", dmax)?;
        if dmax_ceiling < dmax {
            return Err(format!("--dmax-ceiling {dmax_ceiling} must be >= --dmax {dmax}").into());
        }
        let spec = ShardSpec {
            shards,
            dmax_ceiling,
            partition_block: 0,
        };
        let (plan, bundles) = build_sharded(&ds, &spec, layers, build_threads)?;
        let snapshot = snapshot_from_build(Arc::new(plan), bundles, threads)?;
        Service::start_sharded(snapshot, config)
    } else {
        Service::start(mono_snapshot(&ds, layers, build_threads)?, config)
    };
    let report = run_batch(&service, &requests, repeat, threads);
    println!(
        "batch: {} queries ({} unique x {repeat}) on {threads} thread(s) in {:?}",
        report.total,
        requests.len(),
        report.wall()
    );
    println!(
        "  served {} ({:.0} q/s), cache hits {}, timeouts {}, failed {}",
        report.served,
        report.throughput(),
        report.cache_hits,
        report.timeouts,
        report.failed
    );
    println!("{}", service.stats());
    if report.failed > 0 {
        return Err(format!("{} queries failed", report.failed).into());
    }
    Ok(())
}

/// Parses one protocol line into a request:
/// `<bkws|rkws|dkws> <kw1,kw2,...> [dmax=D] [k=K] [layer=M] [deadline_ms=T]
/// [soft_deadline_ms=T] [min_results=N]`.
fn parse_request(ds: &Dataset, line: &str) -> Result<QueryRequest, String> {
    let mut parts = line.split_whitespace();
    let semantics = parts
        .next()
        .and_then(Semantics::parse)
        .ok_or("expected semantics: bkws | rkws | dkws")?;
    let kws = parts.next().ok_or("expected comma-separated keywords")?;
    let keywords: Result<Vec<_>, String> = kws
        .split(',')
        .map(|name| {
            ds.labels
                .get(name.trim())
                .ok_or_else(|| format!("unknown keyword '{}'", name.trim()))
        })
        .collect();
    let mut req = QueryRequest::new(semantics, keywords?, 4, 5);
    for opt in parts {
        let (key, value) = opt
            .split_once('=')
            .ok_or_else(|| format!("bad option '{opt}' (want key=value)"))?;
        let parse = |v: &str| -> Result<u64, String> {
            v.parse().map_err(|_| format!("bad value in '{opt}'"))
        };
        match key {
            "dmax" => req.dmax = parse(value)? as u32,
            "k" => req.k = parse(value)? as usize,
            "layer" => req.layer = Some(parse(value)? as usize),
            "deadline_ms" => req.deadline = Some(Duration::from_millis(parse(value)?)),
            "soft_deadline_ms" => {
                req.soft_deadline = Some(Duration::from_millis(parse(value)?));
            }
            "min_results" => req.min_results = parse(value)? as usize,
            other => return Err(format!("unknown option '{other}'")),
        }
    }
    Ok(req)
}

/// Formats a service outcome as one protocol line.
fn format_response(result: Result<bgi_service::QueryResponse, QueryError>) -> String {
    match result {
        Ok(resp) => {
            let roots: Vec<String> = resp
                .answers
                .iter()
                .map(|a| match a.root {
                    Some(r) => format!("{}:{}", r.0, a.score),
                    None => format!("-:{}", a.score),
                })
                .collect();
            format!(
                "ok answers={} layer={} complete={} fell_back={} cache={} us={} roots={}",
                resp.answers.len(),
                resp.layer,
                resp.completeness,
                resp.fell_back,
                resp.cache_hit,
                resp.latency.as_micros(),
                roots.join(";")
            )
        }
        Err(e) => format!("err {e}"),
    }
}

/// Buffered write state behind the `update`/`flush` protocol verbs.
/// One engine per serving process; the mutex serializes writers while
/// queries keep flowing lock-free against the current snapshot.
struct IngestState {
    engine: Engine,
    buffer: Vec<IngestUpdate>,
}

/// `update` verbs buffered before an automatic `flush` kicks in. Each
/// flush costs one re-materialization of the hierarchy, so batching
/// amortizes it; an explicit `flush` line forces the buffer out early.
const UPDATE_AUTOFLUSH: usize = 1024;

/// Applies the buffered updates through the service's write path. The
/// buffer is consumed either way: a rejected batch (invalid update,
/// refused snapshot) is reported and dropped, matching the engine's
/// batch-atomic semantics.
fn flush_updates(service: &Service, state: &mut IngestState) -> String {
    if state.buffer.is_empty() {
        // Nothing buffered: `flush` still doubles as the idle poll that
        // adopts a finished background rebuild.
        return match service.poll_rebuild(&mut state.engine) {
            Ok(adopted) => format!("ok applied=0 rebuilt={adopted}"),
            Err(e) => format!("err {e}"),
        };
    }
    let batch = std::mem::take(&mut state.buffer);
    match service.apply_updates(&mut state.engine, &batch) {
        Ok(report) => format!(
            "ok applied={} seq={} rebuilt={} rebuild_started={} layers_reused={} \
             layers_rebuilt={}",
            report.outcome.applied,
            report
                .outcome
                .seq
                .map_or_else(|| "-".to_string(), |s| s.to_string()),
            report.rebuilt,
            report.rebuild_started,
            report.outcome.reused_layers,
            report.outcome.rebuilt_layers
        ),
        Err(e) => format!("err {e}"),
    }
}

/// Handles one protocol line; `None` means the peer asked to quit.
fn handle_line(
    ds: &Dataset,
    service: &Service,
    store: Option<&Store>,
    ingest: &Mutex<IngestState>,
    line: &str,
) -> Option<String> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return Some(String::new());
    }
    if let Some(op) = line.strip_prefix("update ") {
        return Some(match IngestUpdate::parse_line(op) {
            None => {
                format!("err bad update '{op}' (want insert <u> <v> | delete <u> <v> | addv <l>)")
            }
            Some(update) => {
                let mut state = ingest.lock().unwrap_or_else(PoisonError::into_inner);
                state.buffer.push(update);
                if state.buffer.len() >= UPDATE_AUTOFLUSH {
                    flush_updates(service, &mut state)
                } else {
                    format!("ok queued={}", state.buffer.len())
                }
            }
        });
    }
    match line {
        "quit" | "exit" => None,
        "stats" => Some(
            service
                .stats()
                .to_string()
                .lines()
                .map(|l| format!("# {l}"))
                .collect::<Vec<_>>()
                .join("\n"),
        ),
        "flush" => {
            let mut state = ingest.lock().unwrap_or_else(PoisonError::into_inner);
            Some(flush_updates(service, &mut state))
        }
        "checkpoint" => {
            Some(match store {
                None => "err no --store configured; checkpoint unavailable".to_string(),
                Some(store) => {
                    let mut state = ingest.lock().unwrap_or_else(PoisonError::into_inner);
                    // Fold a finished background rebuild in first so the
                    // checkpoint persists the freshest hierarchy.
                    if let Err(e) = service.poll_rebuild(&mut state.engine) {
                        return Some(format!("err checkpoint blocked: {e}"));
                    }
                    let through = state.engine.last_seq();
                    match state.engine.checkpoint(store) {
                        Ok(generation) => {
                            format!("ok checkpoint generation={generation} wal_truncated_through={through}")
                        }
                        Err(e) => format!("err checkpoint failed: {e}"),
                    }
                }
            })
        }
        "reload" => Some(match store {
            None => "err no --store configured; reload unavailable".to_string(),
            Some(store) => match service.reload_from_disk(store) {
                Ok(generation) => format!("ok reloaded generation={generation}"),
                // The old snapshot keeps serving; the rollback is
                // already counted in the stats.
                Err(e) => format!("err reload rolled back: {e}"),
            },
        }),
        _ => Some(match parse_request(ds, line) {
            Ok(req) => format_response(service.query(req)),
            Err(e) => format!("err {e}"),
        }),
    }
}

/// Stops admitting, drains in-flight work against its deadlines, and
/// flushes a final stats line to stderr — the graceful-shutdown tail of
/// every `bgi serve` exit path (stdin EOF, `quit`, listener close).
fn graceful_shutdown(service: Arc<Service>) {
    eprintln!("shutting down: draining in-flight requests…");
    match Arc::try_unwrap(service) {
        Ok(mut service) => {
            let drained = service.drain(Duration::from_secs(10));
            if !drained {
                eprintln!("grace period expired with requests still pending");
            }
            eprintln!("final stats:\n{}", service.stats());
        }
        // Connection handler threads still hold the service (TCP); the
        // drop path will shut it down — report final stats regardless.
        Err(service) => eprintln!("final stats:\n{}", service.stats()),
    }
}

fn cmd_serve(args: &[String]) -> CliResult {
    let (positional, flags) = parse_flags(args)?;
    let [dir] = positional.as_slice() else {
        return Err(
            "usage: bgi serve <dir> [--threads N] [--layers L] [--tcp ADDR] [--store S] \
             [--build-threads N] [--shards N] [--dmax-ceiling D]"
                .into(),
        );
    };
    let threads: usize = flag(&flags, "threads", 4)?;
    let layers: usize = flag(&flags, "layers", 4)?;
    let build_threads: usize = flag(&flags, "build-threads", 1)?;
    // Sharded serving: explicit `--shards` builds in memory; a `--store`
    // whose root carries a shard plan is detected and booted as such.
    let shards: usize = flag(&flags, "shards", 0)?;
    let store_is_sharded = flags
        .get("store")
        .is_some_and(|s| bgi_shard::is_sharded(Path::new(s)));
    if shards > 0 || store_is_sharded {
        return cmd_serve_sharded(dir, &flags);
    }
    let tcp = flags.get("tcp").copied();
    let store = match flags.get("store") {
        Some(store_dir) => Some(Store::open(Path::new(store_dir))?),
        None => None,
    };

    // With a store, boot from the newest persisted generation — no
    // hierarchy construction — replaying any WAL tail a crash left
    // behind. Without one, build from the dataset. Either way the
    // live-update engine starts from the same bundle the snapshot
    // serves, so `update`/`flush` stay consistent with queries.
    let (ds, snapshot, engine) = match &store {
        Some(store) => {
            let ds = load(dir)?;
            let t = Instant::now();
            let (generation, bundle) = store.load_latest()?;
            let engine_config = EngineConfig {
                threads: build_threads,
                ..EngineConfig::default()
            };
            let (engine, replayed) = Engine::with_wal(bundle, engine_config, store)?;
            let snapshot = Arc::new(IndexSnapshot::from_bundle(engine.bundle().clone())?);
            eprintln!(
                "recovered index generation {generation} ({} layer(s), {replayed} WAL \
                 update(s) replayed) in {:?}; hierarchy construction skipped",
                snapshot.num_layers(),
                t.elapsed()
            );
            (ds, snapshot, engine)
        }
        None => {
            let ds = load(dir)?;
            let (index, took) = bgi_bench::setup::default_index(&ds, layers);
            eprintln!(
                "index: {} layer(s) over {} vertices, built in {took:?}",
                index.num_layers(),
                ds.num_vertices()
            );
            let bundle = default_bundle(index, build_threads);
            let engine_config = EngineConfig {
                threads: build_threads,
                ..EngineConfig::default()
            };
            let engine = Engine::new(bundle.clone(), engine_config)?;
            let snapshot = Arc::new(IndexSnapshot::from_bundle(bundle)?);
            (ds, snapshot, engine)
        }
    };
    let ingest = Arc::new(Mutex::new(IngestState {
        engine,
        buffer: Vec::new(),
    }));
    let config = ServiceConfig {
        workers: threads,
        ..ServiceConfig::default()
    };
    let service = Arc::new(Service::start_with_logger(
        snapshot,
        config,
        bgi_service::Logger::to(Box::new(std::io::stderr())),
    ));
    let ds = Arc::new(ds);

    match tcp {
        None => {
            eprintln!(
                "serving on stdin/stdout with {threads} worker(s); \
                 one request per line, 'stats' for counters, 'update <op>'/'flush' for \
                 live writes, 'checkpoint' to persist, 'reload' to hot-swap, 'quit' to stop"
            );
            let stdin = std::io::stdin();
            let mut stdout = std::io::stdout();
            // Loop ends on `quit`/`exit` or stdin EOF — both funnel into
            // the graceful drain below.
            for line in stdin.lock().lines() {
                let line = line?;
                match handle_line(&ds, &service, store.as_ref(), &ingest, &line) {
                    Some(reply) => {
                        writeln!(stdout, "{reply}")?;
                        stdout.flush()?;
                    }
                    None => break,
                }
            }
            stdout.flush()?;
            graceful_shutdown(service);
            Ok(())
        }
        Some(addr) => {
            let listener = std::net::TcpListener::bind(addr)?;
            eprintln!(
                "serving on tcp://{} with {threads} worker(s)",
                listener.local_addr()?
            );
            let store = store.map(Arc::new);
            for stream in listener.incoming() {
                let stream = match stream {
                    Ok(s) => s,
                    Err(e) => {
                        // The listener is gone (socket closed, fd limit,
                        // interrupt): stop admitting and drain.
                        eprintln!("listener closed: {e}");
                        break;
                    }
                };
                let service = Arc::clone(&service);
                let ds = Arc::clone(&ds);
                let store = store.clone();
                let ingest = Arc::clone(&ingest);
                std::thread::spawn(move || {
                    let reader = match stream.try_clone() {
                        Ok(s) => std::io::BufReader::new(s),
                        Err(_) => return,
                    };
                    let mut writer = stream;
                    for line in reader.lines() {
                        let Ok(line) = line else { break };
                        match handle_line(&ds, &service, store.as_deref(), &ingest, &line) {
                            Some(reply) => {
                                if writeln!(writer, "{reply}").is_err() {
                                    break;
                                }
                            }
                            None => break,
                        }
                    }
                });
            }
            graceful_shutdown(service);
            Ok(())
        }
    }
}

/// Write state for a sharded serving process. Updates buffer globally;
/// `flush` routes the batch shard-by-shard through the hub, each shard
/// committing (or failing) independently.
struct ShardIngest {
    hub: Arc<ShardedWriteHub>,
    store: ShardedStore,
    buffer: Vec<IngestUpdate>,
}

/// Where a sharded `serve` sends its write verbs: a durable hub when
/// booted from a sharded store, read-only when built in memory (there
/// is no WAL to make a scattered commit crash-safe against).
enum ShardWriter {
    Disk(Mutex<ShardIngest>),
    ReadOnly,
}

const SHARD_READ_ONLY: &str =
    "err sharded serving without --store is read-only; persist with `bgi save-index --shards`";

/// Applies the buffered updates through the sharded write path and
/// reports the per-shard outcome on one protocol line.
fn flush_updates_sharded(service: &Service, state: &mut ShardIngest) -> String {
    if state.buffer.is_empty() {
        return "ok applied=0 shards=0/0".to_string();
    }
    let batch = std::mem::take(&mut state.buffer);
    match service.apply_updates_sharded(&state.hub, &batch) {
        Err(e) => format!("err {e}"),
        Ok(report) => {
            let mut applied = 0usize;
            let mut committed = 0usize;
            let mut failed = Vec::new();
            for (s, slot) in report.per_shard.iter().enumerate() {
                match slot {
                    None => {}
                    Some(Ok(r)) => {
                        applied += r.outcome.applied;
                        committed += 1;
                    }
                    Some(Err(e)) => failed.push(format!("{s}: {e}")),
                }
            }
            let touched = committed + failed.len();
            if failed.is_empty() {
                format!("ok applied={applied} shards={committed}/{touched}")
            } else {
                // Shard-local failure is not batch failure: the healthy
                // shards' shares are already committed and serving.
                format!(
                    "err partial commit: applied={applied} shards={committed}/{touched} \
                     failed=[{}]",
                    failed.join("; ")
                )
            }
        }
    }
}

/// Persists every shard's current hierarchy as that shard's next
/// generation and truncates its WAL.
fn checkpoint_shards(state: &ShardIngest) -> String {
    let mut generations = Vec::new();
    for s in 0..state.hub.num_shards() {
        match state
            .hub
            .with_engine(s, |e| e.checkpoint(state.store.store(s)))
        {
            Ok(generation) => generations.push(generation.to_string()),
            Err(e) => return format!("err checkpoint failed on shard {s}: {e}"),
        }
    }
    format!("ok checkpoint generations=[{}]", generations.join(","))
}

/// Handles one protocol line against a sharded service; `None` means
/// the peer asked to quit.
fn handle_line_sharded(
    ds: &Dataset,
    service: &Service,
    writer: &ShardWriter,
    line: &str,
) -> Option<String> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return Some(String::new());
    }
    if let Some(op) = line.strip_prefix("update ") {
        return Some(match writer {
            ShardWriter::ReadOnly => SHARD_READ_ONLY.to_string(),
            ShardWriter::Disk(state) => match IngestUpdate::parse_line(op) {
                None => format!(
                    "err bad update '{op}' (want insert <u> <v> | delete <u> <v> | addv <l>)"
                ),
                Some(update) => {
                    let mut state = state.lock().unwrap_or_else(PoisonError::into_inner);
                    state.buffer.push(update);
                    if state.buffer.len() >= UPDATE_AUTOFLUSH {
                        flush_updates_sharded(service, &mut state)
                    } else {
                        format!("ok queued={}", state.buffer.len())
                    }
                }
            },
        });
    }
    match line {
        "quit" | "exit" => None,
        "stats" => Some(
            service
                .stats()
                .to_string()
                .lines()
                .map(|l| format!("# {l}"))
                .collect::<Vec<_>>()
                .join("\n"),
        ),
        "flush" => Some(match writer {
            ShardWriter::ReadOnly => SHARD_READ_ONLY.to_string(),
            ShardWriter::Disk(state) => {
                let mut state = state.lock().unwrap_or_else(PoisonError::into_inner);
                flush_updates_sharded(service, &mut state)
            }
        }),
        "checkpoint" => Some(match writer {
            ShardWriter::ReadOnly => SHARD_READ_ONLY.to_string(),
            ShardWriter::Disk(state) => {
                let state = state.lock().unwrap_or_else(PoisonError::into_inner);
                checkpoint_shards(&state)
            }
        }),
        "reload" => Some(
            "err reload is unsupported in sharded serving; restart to re-boot \
             (per-shard WAL replay is automatic)"
                .to_string(),
        ),
        _ => Some(match parse_request(ds, line) {
            Ok(req) => format_response(service.query(req)),
            Err(e) => format!("err {e}"),
        }),
    }
}

/// Sharded serving: every query is scattered over per-shard snapshots
/// and the legs merged deterministically (DESIGN.md §14). Entered from
/// `cmd_serve` when `--shards N` is given (in-memory build, read-only)
/// or `--store` points at a root created by `save-index --shards`
/// (durable, write verbs enabled).
fn cmd_serve_sharded(dir: &str, flags: &HashMap<&str, &str>) -> CliResult {
    if flags.contains_key("tcp") {
        return Err("--tcp is not supported with --shards yet; serve over stdio".into());
    }
    let threads: usize = flag(flags, "threads", 4)?;
    let layers: usize = flag(flags, "layers", 4)?;
    let build_threads: usize = flag(flags, "build-threads", 1)?;
    let ds = load(dir)?;
    let (snapshot, writer) = match flags.get("store") {
        Some(store_dir) => {
            let t = Instant::now();
            let store = ShardedStore::open(Path::new(*store_dir))?;
            let engine_config = EngineConfig {
                threads: build_threads,
                ..EngineConfig::default()
            };
            let (snapshot, hub, replayed) = boot_sharded(&store, engine_config, threads)?;
            eprintln!(
                "booted {} shard(s) (dmax ceiling {}, {} WAL update(s) replayed) in {:?}; \
                 hierarchy construction skipped",
                snapshot.num_shards(),
                snapshot.plan().dmax_ceiling(),
                replayed.iter().sum::<usize>(),
                t.elapsed()
            );
            let writer = ShardWriter::Disk(Mutex::new(ShardIngest {
                hub: Arc::new(hub),
                store,
                buffer: Vec::new(),
            }));
            (snapshot, writer)
        }
        None => {
            let shards: usize = flag(flags, "shards", 1)?;
            let dmax_ceiling: u32 = flag(flags, "dmax-ceiling", 4)?;
            let spec = ShardSpec {
                shards,
                dmax_ceiling,
                partition_block: 0,
            };
            let (plan, bundles) = build_sharded(&ds, &spec, layers, build_threads)?;
            let snapshot = snapshot_from_build(Arc::new(plan), bundles, threads)?;
            (snapshot, ShardWriter::ReadOnly)
        }
    };
    let config = ServiceConfig {
        workers: threads,
        ..ServiceConfig::default()
    };
    let service = Arc::new(Service::start_sharded_with_logger(
        snapshot,
        config,
        bgi_service::Logger::to(Box::new(std::io::stderr())),
    ));
    eprintln!(
        "serving sharded on stdin/stdout with {threads} worker(s); one request per line, \
         'stats' for counters (per-shard lanes included), 'update <op>'/'flush' for live \
         writes (with --store), 'checkpoint' to persist every shard, 'quit' to stop"
    );
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout();
    for line in stdin.lock().lines() {
        let line = line?;
        match handle_line_sharded(&ds, &service, &writer, &line) {
            Some(reply) => {
                writeln!(stdout, "{reply}")?;
                stdout.flush()?;
            }
            None => break,
        }
    }
    stdout.flush()?;
    graceful_shutdown(service);
    Ok(())
}

fn cmd_ingest(args: &[String]) -> CliResult {
    let (positional, flags) = parse_flags(args)?;
    let [dir] = positional.as_slice() else {
        return Err(
            "usage: bgi ingest <dir> --updates <file> [--batch N] [--layers L] [--store S] \
             [--build-threads N]"
                .into(),
        );
    };
    let updates_file = flags
        .get("updates")
        .ok_or("bgi ingest needs --updates <file> (see `bgi gen --updates`)")?;
    let batch: usize = flag(&flags, "batch", 1024)?;
    let batch = batch.max(1);
    let layers: usize = flag(&flags, "layers", 4)?;
    let build_threads: usize = flag(&flags, "build-threads", 1)?;
    let store = match flags.get("store") {
        Some(store_dir) => Some(Store::open(Path::new(store_dir))?),
        None => None,
    };

    // Parse the whole stream up front so a malformed line fails before
    // any update is applied (or logged).
    let text = std::fs::read_to_string(updates_file)?;
    let mut stream = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        match IngestUpdate::parse_line(line) {
            Some(u) => stream.push(u),
            None => return Err(format!("{updates_file}:{}: bad update '{line}'", i + 1).into()),
        }
    }
    if stream.is_empty() {
        return Err(format!("{updates_file} contains no updates").into());
    }

    let engine_config = EngineConfig {
        threads: build_threads,
        ..EngineConfig::default()
    };
    let build_fresh = || -> Result<IndexBundle, Box<dyn std::error::Error>> {
        let ds = load(dir)?;
        let (index, took) = bgi_bench::setup::default_index(&ds, layers);
        eprintln!("built {} layer(s) in {took:?}", index.num_layers());
        Ok(default_bundle(index, build_threads))
    };
    // With a store: boot from the persisted generation (replaying any
    // WAL tail) and log every batch; an empty store is seeded with a
    // fresh build first. Without: build from the dataset and apply in
    // memory.
    let mut engine = match &store {
        Some(store) => {
            let bundle = match store.load_latest() {
                Ok((generation, bundle)) => {
                    eprintln!("recovered generation {generation}");
                    bundle
                }
                Err(bgi_store::StoreError::NoGeneration) => {
                    let bundle = build_fresh()?;
                    let generation = store.save_with_threads(&bundle, build_threads)?;
                    eprintln!("store was empty; seeded generation {generation}");
                    bundle
                }
                Err(e) => return Err(e.into()),
            };
            let (engine, replayed) = Engine::with_wal(bundle, engine_config, store)?;
            if replayed > 0 {
                eprintln!("replayed {replayed} WAL update(s)");
            }
            engine
        }
        None => Engine::new(build_fresh()?, engine_config)?,
    };

    let t = Instant::now();
    let mut applied = 0usize;
    let mut rebuilds = 0usize;
    for chunk in stream.chunks(batch) {
        let outcome = engine.apply_batch(chunk)?;
        applied += outcome.applied;
        if engine.drift().rebuild_recommended {
            engine.rebuild()?;
            rebuilds += 1;
        }
    }
    let took = t.elapsed();
    let rate = applied as f64 / took.as_secs_f64().max(1e-9);
    println!(
        "ingested {applied} update(s) in {took:?} ({rate:.0} updates/s), \
         batch size {batch}, {rebuilds} full rebuild(s)"
    );
    for (m, size) in engine.index().layer_sizes().iter().enumerate() {
        println!("  L{m}: |G| = {size}");
    }
    let report = engine.index().verify();
    if !report.is_clean() {
        return Err(format!("updated index fails verification:\n{report}").into());
    }
    println!("updated index verifies clean");
    if let Some(store) = &store {
        let generation = engine.checkpoint(store)?;
        println!("checkpointed as generation {generation}; WAL truncated");
    }
    Ok(())
}

/// Default serving parameters for a persisted bundle — kept in lockstep
/// with [`IndexSnapshot::build_default`] so `serve --store` behaves like
/// `serve` with a freshly built index. Identical output for every
/// `threads` (DESIGN.md §8).
fn default_bundle(index: big_index::BiGIndex, threads: usize) -> IndexBundle {
    IndexBundle::build_with_threads(
        index,
        BlinksParams::default(),
        RClique::default(),
        EvalOptions::default(),
        threads,
    )
}

fn cmd_save_index(args: &[String]) -> CliResult {
    let (positional, flags) = parse_flags(args)?;
    let [dataset_dir, store_dir] = positional.as_slice() else {
        return Err(
            "usage: bgi save-index <dataset-dir> <store-dir> [--layers L] [--build-threads N] \
             [--shards N] [--dmax-ceiling D]"
                .into(),
        );
    };
    let layers: usize = flag(&flags, "layers", 4)?;
    let build_threads: usize = flag(&flags, "build-threads", 1)?;
    let shards: usize = flag(&flags, "shards", 0)?;
    let ds = load(dataset_dir)?;
    if shards > 0 {
        let dmax_ceiling: u32 = flag(&flags, "dmax-ceiling", 4)?;
        let spec = ShardSpec {
            shards,
            dmax_ceiling,
            partition_block: 0,
        };
        let (plan, bundles) = build_sharded(&ds, &spec, layers, build_threads)?;
        let t = Instant::now();
        let store = ShardedStore::create(Path::new(*store_dir), plan)?;
        let generations = store.save_all(&bundles, build_threads)?;
        println!(
            "saved {shards} shard generation(s) [{}] (dmax ceiling {dmax_ceiling}) \
             to {store_dir} in {:?}",
            generations
                .iter()
                .map(u64::to_string)
                .collect::<Vec<_>>()
                .join(","),
            t.elapsed()
        );
        return Ok(());
    }
    let (index, took) = bgi_bench::setup::default_index(&ds, layers);
    eprintln!("built {} layer(s) in {took:?}", index.num_layers());
    let t = Instant::now();
    let bundle = default_bundle(index, build_threads);
    let store = Store::open(Path::new(store_dir))?;
    let generation = store.save_with_threads(&bundle, build_threads)?;
    println!(
        "saved generation {generation} ({} layer(s), every per-layer search index \
         prebuilt) to {store_dir} in {:?}",
        bundle.num_layers(),
        t.elapsed()
    );
    Ok(())
}

fn cmd_load_index(args: &[String]) -> CliResult {
    let (positional, _flags) = parse_flags(args)?;
    let [store_dir] = positional.as_slice() else {
        return Err("usage: bgi load-index <store-dir>".into());
    };
    let store = Store::open(Path::new(store_dir))?;
    let t = Instant::now();
    let (generation, bundle) = store.load_latest()?;
    // The same admission gate serving uses: verify + layer coverage.
    let snapshot = IndexSnapshot::from_bundle(bundle)?;
    println!(
        "recovered generation {generation} in {:?}; hierarchy construction skipped",
        t.elapsed()
    );
    for (m, size) in snapshot.index().layer_sizes().iter().enumerate() {
        println!("  L{m}: |G| = {size}");
    }
    let quarantined = store.quarantined();
    if !quarantined.is_empty() {
        println!(
            "{} quarantined generation(s) held for post-mortem",
            quarantined.len()
        );
    }
    Ok(())
}

fn cmd_reload(args: &[String]) -> CliResult {
    let (positional, _flags) = parse_flags(args)?;
    let [store_dir] = positional.as_slice() else {
        return Err("usage: bgi reload <store-dir>".into());
    };
    let store = Store::open(Path::new(store_dir))?;
    // Dry-run recovery: what would a serving process swap to right now?
    match store.load_latest() {
        Ok((generation, bundle)) => {
            let report = bundle.index.verify();
            println!(
                "would serve generation {generation}: {} layer(s), verify {}",
                bundle.num_layers(),
                if report.is_clean() { "clean" } else { "DIRTY" }
            );
            let quarantined = store.quarantined();
            if !quarantined.is_empty() {
                println!(
                    "{} quarantined generation(s) held for post-mortem",
                    quarantined.len()
                );
            }
            if report.is_clean() {
                Ok(())
            } else {
                Err("recovered bundle fails verification; a reload would roll back".into())
            }
        }
        Err(e) => Err(format!("store is not recoverable: {e}").into()),
    }
}

fn cmd_query(args: &[String]) -> CliResult {
    let (dir, kws, dmax, k) = match args {
        [dir, kws] => (dir, kws, 5u32, 10usize),
        [dir, kws, dmax] => (dir, kws, dmax.parse()?, 10usize),
        [dir, kws, dmax, k] => (dir, kws, dmax.parse()?, k.parse()?),
        _ => return Err("usage: bgi query <dir> <kw1,kw2,...> [dmax] [k]".into()),
    };
    let ds = load(dir)?;
    let keywords: Result<Vec<_>, _> = kws
        .split(',')
        .map(|name| {
            ds.labels
                .get(name.trim())
                .ok_or_else(|| format!("unknown keyword '{name}'"))
        })
        .collect();
    let query = KeywordQuery::new(keywords?, dmax);

    let (index, _) = bgi_bench::setup::default_index(&ds, 7);
    let blinks = Blinks::new(BlinksParams {
        block_size: 1000,
        prune_dist: dmax.max(5),
    });
    let boosted = Boosted::new(&index, blinks, EvalOptions::default());

    let t = std::time::Instant::now();
    let result = boosted.query(&query, k);
    let took = t.elapsed();
    println!(
        "layer {} ({}), {} answer(s) in {:?}:",
        result.layer,
        if result.fell_back {
            "fell back"
        } else {
            "chosen"
        },
        result.answers.len(),
        took
    );
    for (i, a) in result.answers.iter().enumerate() {
        let verts: Vec<String> = a
            .vertices
            .iter()
            .map(|&v| format!("{}({})", v.0, ds.labels.name(ds.graph.label(v))))
            .collect();
        println!(
            "  #{i} score={} root={:?}: {}",
            a.score,
            a.root,
            verts.join(" ")
        );
    }
    Ok(())
}
