//! Ingest-throughput sweep over update batch sizes (bgi-ingest).
//! Writes the gated metrics to `BENCH_ingest.json` (see `bench_gate`).
use bgi_bench::json;

fn main() {
    let scale = bgi_bench::scale_from_env(2_000);
    let (report, metrics) = bgi_bench::experiments::ingest::run_with_metrics(scale);
    println!("{report}");
    let path = json::artifact_path("BENCH_ingest.json");
    json::write_metrics(&path, "ingest", &metrics).expect("write BENCH_ingest.json");
    println!("wrote {}", path.display());
}
