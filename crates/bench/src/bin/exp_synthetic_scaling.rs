//! Regenerates Fig. 15.
fn main() {
    let scale = bgi_bench::scale_from_env(20_000);
    println!("{}", bgi_bench::experiments::scaling::run(scale));
}
