//! Serving-throughput sweep over worker counts (bgi-service).
fn main() {
    let scale = bgi_bench::scale_from_env(8_000);
    println!("{}", bgi_bench::experiments::throughput::run(scale));
}
