//! Serving-throughput sweep over worker counts (bgi-service).
//! Writes the gated metrics to `BENCH_throughput.json` (see `bench_gate`).
use bgi_bench::json;

fn main() {
    let scale = bgi_bench::scale_from_env(8_000);
    let (report, metrics) = bgi_bench::experiments::throughput::run_with_metrics(scale);
    println!("{report}");
    let path = json::artifact_path("BENCH_throughput.json");
    json::write_metrics(&path, "throughput", &metrics).expect("write BENCH_throughput.json");
    println!("wrote {}", path.display());
}
