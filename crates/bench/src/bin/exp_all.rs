//! Runs the full experiment suite and prints the headline summary
//! (paper: Blinks reduced by 50.5% on average, r-clique by 29.5%).
use bgi_bench::experiments;

fn main() {
    let scale = bgi_bench::scale_from_env(20_000);
    let print = |s: String| {
        println!("{s}");
        println!();
        use std::io::Write;
        std::io::stdout().flush().ok();
    };
    print(experiments::datasets::run(scale));
    print(experiments::index_sizes::run(scale));
    let (blinks, blinks_reductions) = experiments::query_perf::run_blinks(scale);
    print(blinks);
    let (rclique, rclique_reductions) = experiments::query_perf::run_rclique(scale);
    print(rclique);
    print(experiments::scaling::run(scale));
    print(experiments::cost_model::run(scale));
    print(experiments::optimizations::run(scale));
    print(experiments::layer_sweep::run(scale));
    print(experiments::ablations::run(scale));
    print(experiments::ingest::run(scale));
    print(experiments::anytime::run(scale));

    let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len().max(1) as f64;
    println!("==============================================================");
    println!("HEADLINE (paper: Blinks -50.5%, r-clique -29.5% on average)");
    println!(
        "  Blinks mean reduction:   {:.1}% (over {} datasets)",
        mean(&blinks_reductions),
        blinks_reductions.len()
    );
    println!(
        "  r-clique mean reduction: {:.1}% (over {} datasets)",
        mean(&rclique_reductions),
        rclique_reductions.len()
    );
}
