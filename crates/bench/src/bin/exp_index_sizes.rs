//! Regenerates Tab. 3, Fig. 9, and the Exp-3 construction times.
fn main() {
    let scale = bgi_bench::scale_from_env(20_000);
    println!("{}", bgi_bench::experiments::index_sizes::run(scale));
}
