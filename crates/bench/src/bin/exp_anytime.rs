//! Anytime dkws quality/latency trade at a 50 ms soft deadline.
//! Writes the gated metrics to `BENCH_anytime.json` (see `bench_gate`).
use bgi_bench::json;

fn main() {
    let scale = bgi_bench::scale_from_env(8_000);
    let (report, metrics) = bgi_bench::experiments::anytime::run_with_metrics(scale);
    println!("{report}");
    let path = json::artifact_path("BENCH_anytime.json");
    json::write_metrics(&path, "anytime", &metrics).expect("write BENCH_anytime.json");
    println!("wrote {}", path.display());
}
