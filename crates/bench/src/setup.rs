//! Shared experiment setup: datasets, default indexes, and workloads.

use bgi_datasets::{benchmark_queries, BenchQuery, Dataset, DatasetSpec};
use bgi_graph::{DiGraph, Ontology};
use big_index::{BiGIndex, GenConfig};
use std::time::{Duration, Instant};

/// The workload seed used when the caller doesn't pick one; fixed so
/// the benchmark suite is reproducible run to run.
pub const DEFAULT_WORKLOAD_SEED: u64 = 0xC0FFEE;

/// Reads the experiment scale from `BGI_SCALE` (vertices per dataset),
/// defaulting to `default`.
pub fn scale_from_env(default: usize) -> usize {
    std::env::var("BGI_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// The paper's "default index" configuration for one step — re-exported
/// from `big-index`, which owns the greedy layer schedule shared by the
/// benchmarks, the CLI, and per-shard index construction.
pub fn full_step_config(g: &DiGraph, ontology: &Ontology) -> GenConfig {
    big_index::full_step_config(g, ontology)
}

/// Builds the paper's default BiG-index: up to `max_layers` layers, each
/// generalizing every label one ontology step, summarized by forward
/// maximal bisimulation. Returns the index and its construction time.
pub fn default_index(ds: &Dataset, max_layers: usize) -> (BiGIndex, Duration) {
    let t = Instant::now();
    let configs = big_index::greedy_full_step_configs(
        &ds.graph,
        &ds.ontology,
        max_layers,
        bgi_bisim::BisimDirection::Forward,
    );
    let index = BiGIndex::build_with_configs(
        ds.graph.clone(),
        ds.ontology.clone(),
        configs,
        bgi_bisim::BisimDirection::Forward,
    );
    (index, t.elapsed())
}

/// A fully prepared experiment bench: dataset, default index, workload.
pub struct Workbench {
    /// The dataset.
    pub dataset: Dataset,
    /// The default BiG-index.
    pub index: BiGIndex,
    /// Index construction time.
    pub build_time: Duration,
    /// The Q1–Q8 workload.
    pub queries: Vec<BenchQuery>,
}

impl Workbench {
    /// Prepares a workbench for `spec` with `max_layers` index layers
    /// and a Tab. 4-style workload (`d_max`, minimum keyword count
    /// scaled to the dataset size), using the suite's default workload
    /// seed.
    pub fn prepare(spec: &DatasetSpec, max_layers: usize, dmax: u32) -> Self {
        Self::prepare_seeded(spec, max_layers, dmax, DEFAULT_WORKLOAD_SEED)
    }

    /// [`Workbench::prepare`] with an explicit workload seed, so two
    /// runs (or two processes) can agree on — or deliberately vary —
    /// the generated queries.
    pub fn prepare_seeded(spec: &DatasetSpec, max_layers: usize, dmax: u32, seed: u64) -> Self {
        let dataset = spec.generate();
        let (index, build_time) = default_index(&dataset, max_layers);
        let min_count = (dataset.num_vertices() / 100).max(3) as u32;
        let queries = benchmark_queries(&dataset, dmax, min_count, seed);
        Workbench {
            dataset,
            index,
            build_time,
            queries,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_step_config_generalizes_present_labels() {
        let ds = DatasetSpec::yago_like(2000).generate();
        let config = full_step_config(&ds.graph, &ds.ontology);
        assert!(!config.is_empty());
        // Every mapping's source occurs in the graph.
        let counts = ds.graph.label_counts();
        for &(from, to) in config.mappings() {
            assert!(counts[from.index()] > 0);
            assert!(ds.ontology.direct_supertypes(from).contains(&to));
        }
    }

    #[test]
    fn default_index_has_layers_and_shrinks() {
        let ds = DatasetSpec::yago_like(3000).generate();
        let (index, t) = default_index(&ds, 7);
        assert!(index.num_layers() >= 2);
        assert!(index.graph_at(1).size() < ds.graph.size());
        assert!(t > Duration::ZERO);
        let sizes = index.layer_sizes();
        for w in sizes.windows(2) {
            assert!(w[1] <= w[0], "sizes must be non-increasing: {sizes:?}");
        }
    }

    #[test]
    fn workbench_prepares_everything() {
        let wb = Workbench::prepare(&DatasetSpec::yago_like(3000), 4, 4);
        assert!(wb.index.num_layers() >= 1);
        assert!(wb.queries.len() >= 4);
    }
}
