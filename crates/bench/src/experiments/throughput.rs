//! Serving throughput: closed-loop batch replay through `bgi-service`
//! at increasing worker counts, on one shared index snapshot.
//!
//! This is the concurrency experiment the paper doesn't run (its
//! evaluation is single-query latency, Sec. 6): since Algo. 2 is
//! read-only over the hierarchy, one immutable snapshot should scale
//! near-linearly until memory bandwidth interferes. The second table
//! replays the same workload with the answer cache warm, where
//! throughput is bounded by lookup cost alone.

use crate::harness::{fmt_duration, TableWriter};
use crate::setup::Workbench;
use bgi_datasets::queries::related_query_with;
use bgi_datasets::{Dataset, DatasetSpec};
use bgi_service::{
    run_batch, snapshot_from_build, IndexSnapshot, QueryRequest, Semantics, Service, ServiceConfig,
};
use bgi_shard::{build_shard_bundles, ShardBuildParams, ShardPlan, ShardSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Builds a mixed-semantics request workload from a workbench's
/// Q1–Q8 queries.
pub fn mixed_requests(wb: &Workbench, k: usize) -> Vec<QueryRequest> {
    wb.queries
        .iter()
        .enumerate()
        .map(|(i, q)| {
            QueryRequest::new(
                Semantics::ALL[i % Semantics::ALL.len()],
                q.keywords.clone(),
                q.dmax,
                k,
            )
        })
        .collect()
}

/// Builds up to `want` mixed-semantics requests from one seeded rng
/// stream — one Tab. 4 batch is only 8 queries, too few to keep a
/// worker pool busy. Deterministic in `seed`.
///
/// Unlike [`benchmark_queries`], this draws each query with a *fixed*
/// count threshold and no dominance-relaxation ladder: a size that
/// finds nothing is simply skipped. The ladder exists so the Tab. 4
/// batch always fills all of Q1–Q8; a throughput workload only needs
/// *many distinct* queries, and the ladder's exhaustive retries make
/// generation cost explode on large graphs.
pub fn seeded_requests(
    ds: &Dataset,
    dmax: u32,
    k: usize,
    seed: u64,
    want: usize,
) -> Vec<QueryRequest> {
    let min_count = (ds.num_vertices() / 100).max(3) as u32;
    let sizes = [2usize, 3, 2, 3, 4, 2, 3, 5];
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out: Vec<QueryRequest> = Vec::new();
    let mut seen: Vec<Vec<bgi_graph::LabelId>> = Vec::new();
    // Strictest first: each pass admits more labels, so the
    // deterministic rarest-in-ball pick yields new combinations once a
    // pass's pool is exhausted. Draw counts are bounded per pass — a
    // degenerate dataset must not loop forever.
    let passes = [
        (min_count, true),
        ((min_count / 4).max(1), true),
        (1, true),
        (min_count, false),
        (1, false),
    ];
    for (threshold, require_dominant) in passes {
        for draw in 0..(want + 16) {
            if out.len() >= want {
                return out;
            }
            let size = sizes[draw % sizes.len()];
            let Some(keywords) =
                related_query_with(ds, size, dmax, threshold, require_dominant, &mut rng)
            else {
                continue;
            };
            // Distinct keyword sets only; duplicates across draws
            // would skew the cold/warm split.
            let mut kws = keywords.clone();
            kws.sort_unstable();
            if seen.contains(&kws) {
                continue;
            }
            seen.push(kws);
            out.push(QueryRequest::new(
                Semantics::ALL[out.len() % Semantics::ALL.len()],
                keywords,
                dmax,
                k,
            ));
        }
    }
    out
}

/// Runs the sweep and renders the report.
pub fn run(scale: usize) -> String {
    run_with_metrics(scale).0
}

/// [`run`], also returning the JSON metrics for `BENCH_throughput.json`.
/// The gated keys are single-worker numbers (`p95_us`, from the service
/// latency histogram after the 1-worker cold pass; `cold_1t_ms`, its
/// wall time) — stable on any runner, unlike multi-worker throughput.
pub fn run_with_metrics(scale: usize) -> (String, Vec<(String, f64)>) {
    let wb = Workbench::prepare(&DatasetSpec::yago_like(scale), 4, 4);
    let snapshot =
        Arc::new(IndexSnapshot::build_default(wb.index.clone()).expect("workbench index verifies"));
    let requests = seeded_requests(&wb.dataset, 4, 5, crate::setup::DEFAULT_WORKLOAD_SEED, 32);
    let mut out = format!(
        "serving throughput, {} ({} vertices, {} layers, {} queries x 4 repeats)\n\n",
        wb.dataset.name,
        wb.dataset.num_vertices(),
        wb.index.num_layers(),
        requests.len()
    );

    let mut cold = TableWriter::new(&["threads", "served", "wall", "qps", "cache hits"]);
    let mut warm = TableWriter::new(&["threads", "served", "wall", "qps", "hit rate"]);
    let mut metrics: Vec<(String, f64)> = Vec::new();
    let mut baseline_qps = 0.0;
    for threads in [1usize, 2, 4, 8] {
        let config = ServiceConfig {
            workers: threads,
            ..ServiceConfig::default()
        };
        // Fresh service per point: the cold table must not inherit a
        // warm cache from the previous thread count.
        let service = Service::start(Arc::clone(&snapshot), config);
        let report = run_batch(&service, &requests, 4, threads);
        assert_eq!(report.failed, 0, "throughput run failed queries");
        let qps = report.throughput();
        if threads == 1 {
            baseline_qps = qps;
            let stats = service.stats();
            metrics.push(("cold_1t_ms".into(), report.wall().as_secs_f64() * 1e3));
            metrics.push(("p95_us".into(), stats.p95.as_secs_f64() * 1e6));
            metrics.push(("qps_1t".into(), qps));
        }
        let speedup = if baseline_qps > 0.0 {
            qps / baseline_qps
        } else {
            0.0
        };
        cold.row(&[
            format!("{threads}"),
            format!("{}", report.served),
            fmt_duration(report.wall()),
            format!("{qps:.0} ({speedup:.2}x)"),
            format!("{}", report.cache_hits),
        ]);
        // Same service again: every distinct query is now cached.
        let rewarm = run_batch(&service, &requests, 4, threads);
        assert_eq!(rewarm.failed, 0);
        let stats = service.stats();
        warm.row(&[
            format!("{threads}"),
            format!("{}", rewarm.served),
            fmt_duration(rewarm.wall()),
            format!("{:.0}", rewarm.throughput()),
            format!("{:.1}%", stats.cache.hit_rate() * 100.0),
        ]);
    }
    out.push_str("cold cache:\n");
    out.push_str(&cold.render());
    out.push_str("\nwarm cache (same workload replayed):\n");
    out.push_str(&warm.render());
    out.push('\n');
    let (sharded_report, sharded_metrics) = sharded_sweep();
    out.push_str(&sharded_report);
    metrics.extend(sharded_metrics);
    (out, metrics)
}

/// Builds the sharded sweep's workload: distance-semantics queries
/// (rkws/dkws) over the dataset's most *frequent* label pairs. Their
/// cost is dominated by pairwise match-distance enumeration — roughly
/// quadratic in the number of matches a deployment holds — which is the
/// regime partitioning genuinely accelerates on a single core: `s`
/// shards each enumerate pairs inside their own universe only, so the
/// total pair work shrinks by `s / dup²` where `dup` is the halo
/// duplication factor.
pub fn frequent_pair_requests(ds: &Dataset, dmax: u32, k: usize, want: usize) -> Vec<QueryRequest> {
    let mut counts: std::collections::HashMap<bgi_graph::LabelId, u32> =
        std::collections::HashMap::new();
    for v in ds.graph.vertices() {
        *counts.entry(ds.graph.label(v)).or_insert(0) += 1;
    }
    let mut by_freq: Vec<(bgi_graph::LabelId, u32)> = counts.into_iter().collect();
    by_freq.sort_unstable_by_key(|&(l, c)| (std::cmp::Reverse(c), l));
    let top: Vec<bgi_graph::LabelId> = by_freq.iter().take(8).map(|&(l, _)| l).collect();
    let mut out = Vec::new();
    'fill: for i in 0..top.len() {
        for j in (i + 1)..top.len() {
            if out.len() >= want {
                break 'fill;
            }
            let semantics = if out.len() % 2 == 0 {
                Semantics::Rkws
            } else {
                Semantics::Dkws
            };
            out.push(QueryRequest::new(semantics, vec![top[i], top[j]], dmax, k));
        }
    }
    out
}

/// Scatter–gather throughput vs shard count on one worker and one
/// client, so the ratio isolates per-query execution cost rather than
/// thread scheduling (DESIGN.md §14). Every point replays the same
/// distinct-query workload against a fresh deployment — no repeats, so
/// the answer cache never absorbs a query and the sweep measures the
/// hierarchies, not the cache.
///
/// The workload is [`frequent_pair_requests`]: pairwise-distance
/// semantics whose cost is quadratic in per-deployment match count, so
/// cutting the graph beats the monolithic hierarchy even with zero
/// parallelism (multi-core scatter adds on top). The `dup` column is
/// the halo duplication factor — Σ|universe| / |V| — the overhead that
/// caps the win. The gated floor (`sharded_qps_4shards`,
/// ci/bench_baseline.json) holds the win down.
///
/// The sweep runs on [`DatasetSpec::road_like`], not the hub-centric
/// knowledge-graph presets: a hub's 2-hop ball covers most of a
/// scale-free graph, so every shard's halo universe is nearly the
/// whole graph (`dup ≈ shards` — measured 3.7 at 4 shards on
/// `yago_like` at every scale) and single-core sharding can only lose.
/// Locality-rich graphs keep separators thin (`dup ≈ 1.2` here), which
/// is the honest precondition for partitioned serving; DESIGN.md §14
/// spells out the trade-off.
pub fn sharded_sweep() -> (String, Vec<(String, f64)>) {
    // The halo radius is `2 * dmax_ceiling`: a ceiling matched to a
    // dmax-2 workload keeps shard universes from swallowing the graph.
    // A fixed scale (independent of `BGI_SCALE`) keeps the gated
    // baseline comparable across runs; 20k vertices is where the halo
    // surface term drops below ~25% of a 4-shard cut.
    const SHARD_DMAX: u32 = 2;
    const ROAD_SCALE: usize = 20_000;
    let ds = DatasetSpec::road_like(ROAD_SCALE).generate();
    let requests = frequent_pair_requests(&ds, SHARD_DMAX, 10, 24);
    let mut out = format!(
        "sharded scatter–gather ({}, {} vertices; 1 worker, 1 client, {} distinct \
         frequent-pair rkws/dkws queries, dmax {SHARD_DMAX}):\n",
        ds.name,
        ds.num_vertices(),
        requests.len()
    );
    let ds = &ds;
    let mut table = TableWriter::new(&["shards", "dup", "served", "wall", "qps", "speedup"]);
    let mut metrics: Vec<(String, f64)> = Vec::new();
    let mut one_shard_qps = 0.0;
    for shards in [1usize, 2, 4] {
        let spec = ShardSpec {
            shards,
            dmax_ceiling: SHARD_DMAX,
            partition_block: 0,
        };
        let plan = ShardPlan::build(&ds.graph, &spec).expect("shard plan builds");
        let dup = (0..shards).map(|s| plan.universe(s).len()).sum::<usize>() as f64
            / plan.num_vertices().max(1) as f64;
        let bundles =
            build_shard_bundles(&ds.graph, &ds.ontology, &plan, &ShardBuildParams::default());
        let snapshot =
            snapshot_from_build(Arc::new(plan), bundles, 1).expect("sharded snapshot admits");
        let service = Service::start_sharded(
            snapshot,
            ServiceConfig {
                workers: 1,
                ..ServiceConfig::default()
            },
        );
        let report = run_batch(&service, &requests, 1, 1);
        assert_eq!(report.failed, 0, "sharded throughput run failed queries");
        let qps = report.throughput();
        if shards == 1 {
            one_shard_qps = qps;
        }
        let speedup = if one_shard_qps > 0.0 {
            qps / one_shard_qps
        } else {
            0.0
        };
        table.row(&[
            format!("{shards}"),
            format!("{dup:.2}"),
            format!("{}", report.served),
            fmt_duration(report.wall()),
            format!("{qps:.0}"),
            format!("{speedup:.2}x"),
        ]);
        match shards {
            1 => metrics.push(("sharded_qps_1shard".into(), qps)),
            n => metrics.push((format!("sharded_qps_{n}shards"), qps)),
        }
    }
    out.push_str(&table.render());
    (out, metrics)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixed_requests_cover_all_semantics() {
        let wb = Workbench::prepare(&DatasetSpec::yago_like(1500), 2, 3);
        let reqs = mixed_requests(&wb, 5);
        assert!(!reqs.is_empty());
        if reqs.len() >= 3 {
            let mut seen = [false; 3];
            for r in &reqs {
                seen[r.semantics.index()] = true;
            }
            assert!(seen.iter().all(|&b| b));
        }
    }
}
