//! Tab. 2 (dataset statistics) and Tab. 4 (benchmark queries).

use crate::harness::TableWriter;
use bgi_datasets::{benchmark_queries, DatasetSpec};

/// Renders Tab. 2 and Tab. 4 for the scaled stand-in datasets.
pub fn run(scale: usize) -> String {
    let mut out = String::new();

    out.push_str("## Tab. 2 — dataset statistics (scaled stand-ins)\n\n");
    let mut t = TableWriter::new(&["Dataset", "|V|", "|E|", "|V_ont|", "|E_ont|"]);
    let specs = [
        DatasetSpec::yago_like(scale),
        DatasetSpec::dbpedia_like(scale),
        DatasetSpec::imdb_like(scale),
        DatasetSpec::synt(scale / 2),
        DatasetSpec::synt(scale),
        DatasetSpec::synt(scale * 2),
        DatasetSpec::synt(scale * 4),
    ];
    for spec in &specs {
        let ds = spec.generate();
        t.row(&[
            ds.name.clone(),
            ds.num_vertices().to_string(),
            ds.num_edges().to_string(),
            ds.ontology.num_labels().to_string(),
            ds.ontology.num_edges().to_string(),
        ]);
    }
    out.push_str(&t.render());

    out.push_str("\n## Tab. 4 — benchmarked queries (yago-like)\n\n");
    let ds = DatasetSpec::yago_like(scale).generate();
    let min_count = (scale / 100).max(3) as u32;
    let queries = benchmark_queries(&ds, 5, min_count, 0xC0FFEE);
    let mut t = TableWriter::new(&["ID", "Keywords", "Counts in the data graph"]);
    for q in &queries {
        let names: Vec<&str> = q.keywords.iter().map(|&l| ds.labels.name(l)).collect();
        let counts: Vec<String> = q.counts.iter().map(u32::to_string).collect();
        t.row(&[
            q.id.clone(),
            format!("({})", names.join(", ")),
            format!("({})", counts.join(", ")),
        ]);
    }
    out.push_str(&t.render());
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn report_contains_all_rows() {
        let report = super::run(2000);
        assert!(report.contains("yago-like"));
        assert!(report.contains("dbpedia-like"));
        assert!(report.contains("imdb-like"));
        assert!(report.contains("synt-"));
        assert!(report.contains("Q1"));
    }
}
