//! Fig. 19 and Exp-6: query performance per layer `m`, including the
//! comparison with Fan et al. [10] — which summarizes with Bisim once,
//! i.e. is exactly the layer-1 point of the sweep (after one keyword
//! generalization); the paper observes that fixed layer is "always
//! suboptimal".

use crate::harness::{fmt_duration, median_time, TableWriter};
use crate::setup::Workbench;
use bgi_datasets::DatasetSpec;
use bgi_search::blinks::{Blinks, BlinksParams};
use big_index::query_gen::generalize_query;
use big_index::{Boosted, EvalOptions};
use std::time::Duration;

const TOP_K: usize = 10;

/// Renders Fig. 19: per-query time at each layer, with the cost model's
/// chosen layer and the empirically best layer marked.
pub fn run(scale: usize) -> String {
    let wb = Workbench::prepare(&DatasetSpec::yago_like(scale), 7, 5);
    let blinks = Blinks::new(BlinksParams {
        block_size: 1000,
        prune_dist: 5,
    });
    let boosted = Boosted::new(&wb.index, blinks, EvalOptions::default());
    let h = wb.index.num_layers();

    let mut header = vec!["Query".to_string()];
    for m in 0..=h {
        header.push(format!("m={m}"));
    }
    header.push("best".into());
    header.push("predicted".into());
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = TableWriter::new(&header_refs);

    let mut hits = 0usize;
    for q in &wb.queries {
        let query = q.to_query();
        let mut cells = vec![q.id.clone()];
        let mut best = (Duration::MAX, 0usize);
        for m in 0..=h {
            if generalize_query(&wb.index, &query, m).len() != query.len() {
                cells.push("merge".into());
                continue;
            }
            let time = median_time(2, || boosted.query_at_layer(&query, TOP_K, m).answers);
            if time < best.0 {
                best = (time, m);
            }
            cells.push(fmt_duration(time));
        }
        let predicted = boosted.chosen_layer(&query);
        if predicted == best.1 {
            hits += 1;
        }
        cells.push(format!("m={}", best.1));
        cells.push(format!("m={predicted}"));
        t.row(&cells);
    }
    let acc = 100.0 * hits as f64 / wb.queries.len().max(1) as f64;
    format!(
        "## Fig. 19 — query performance by layer m (yago-like, Blinks)\n\n{}\n\
         prediction accuracy: {acc:.0}% (paper: 75%)\n\n\
         ## Exp-6 — comparison with Fan et al. [10]\n\n\
         [10] summarizes with Bisim once = the fixed m=1 column above; the \
         sweep shows a single fixed layer is not optimal across queries, \
         matching the paper's observation.\n",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn sweep_renders() {
        let report = super::run(2000);
        assert!(report.contains("Fig. 19"));
        assert!(report.contains("m=0"));
        assert!(report.contains("prediction accuracy"));
    }
}
