//! Figs. 17–18 and the isKey ablation (Exp-5): effectiveness of the
//! query-processing optimizations on the yago-like workload.

use crate::harness::{fmt_duration, median_time, reduction_pct, TableWriter};
use crate::setup::Workbench;
use bgi_datasets::DatasetSpec;
use bgi_search::blinks::{Blinks, BlinksParams};
use big_index::{Boosted, EvalOptions, RealizerKind};

fn blinks() -> Blinks {
    Blinks::new(BlinksParams {
        block_size: 1000,
        prune_dist: 5,
    })
}

/// Generic A/B over two option sets. The optimizations under test act
/// on *answer generation*, so the improvement column isolates the
/// specialization + generation time at a summary layer with a top-k
/// large enough to exercise generation (the paper's totals are
/// generation-dominated at million-vertex scale); full query totals are
/// reported alongside.
fn ab_table(
    wb: &Workbench,
    title: &str,
    on_label: &str,
    off_label: &str,
    on: EvalOptions,
    off: EvalOptions,
) -> (String, f64) {
    const GEN_K: usize = 100;
    let boosted_on = Boosted::new(&wb.index, blinks(), on);
    let boosted_off = Boosted::new(&wb.index, blinks(), off);
    let mut t = TableWriter::new(&[
        "Query",
        &format!("{off_label} (gen)"),
        &format!("{on_label} (gen)"),
        "improvement",
        "total off",
        "total on",
    ]);
    let mut total_impr = 0.0;
    let mut counted = 0usize;
    for q in &wb.queries {
        let query = q.to_query();
        // Force the first summary layer where keywords stay distinct so
        // generation actually runs.
        let m = (1..=wb.index.num_layers())
            .find(|&m| {
                big_index::query_gen::generalize_query(&wb.index, &query, m).len() == query.len()
            })
            .unwrap_or(0);
        let gen_time = |b: &Boosted<'_, Blinks>| {
            let mut samples: Vec<std::time::Duration> = (0..3)
                .map(|_| {
                    let r = b.query_at_layer(&query, GEN_K, m);
                    r.timings.spec_prune + r.timings.answer_gen
                })
                .collect();
            samples.sort_unstable();
            samples[samples.len() / 2]
        };
        let g_on = gen_time(&boosted_on);
        let g_off = gen_time(&boosted_off);
        let t_on = median_time(3, || boosted_on.query_at_layer(&query, GEN_K, m).answers);
        let t_off = median_time(3, || boosted_off.query_at_layer(&query, GEN_K, m).answers);
        let impr = reduction_pct(g_off.max(std::time::Duration::from_nanos(1)), g_on);
        total_impr += impr;
        counted += 1;
        t.row(&[
            q.id.clone(),
            fmt_duration(g_off),
            fmt_duration(g_on),
            format!("{impr:.1}%"),
            fmt_duration(t_off),
            fmt_duration(t_on),
        ]);
    }
    let mean = total_impr / counted.max(1) as f64;
    (
        format!(
            "## {title}\n\n{}\nmean generation improvement: {mean:.1}%\n",
            t.render()
        ),
        mean,
    )
}

/// Fig. 17: specialization-order optimization on/off.
pub fn spec_order(wb: &Workbench) -> (String, f64) {
    // The ordering optimization applies to Algo. 3.
    let on = EvalOptions {
        realizer: RealizerKind::VertexAtATime,
        use_spec_order: true,
        ..EvalOptions::default()
    };
    let mut off = on;
    off.use_spec_order = false;
    ab_table(
        wb,
        "Fig. 17 — specialization order optimization (paper: 14.8%)",
        "ordered",
        "unordered",
        on,
        off,
    )
}

/// Fig. 18: path-based answer generation vs vertex-at-a-time.
pub fn path_based(wb: &Workbench) -> (String, f64) {
    let on = EvalOptions {
        realizer: RealizerKind::PathBased,
        ..EvalOptions::default()
    };
    let mut off = on;
    off.realizer = RealizerKind::VertexAtATime;
    ab_table(
        wb,
        "Fig. 18 — path-based answer generation (paper: 21.7%)",
        "p_ans_graph_gen",
        "ans_graph_gen",
        on,
        off,
    )
}

/// Ablation: early keyword specialization (isKey, Sec. 4.3.1) on/off.
pub fn early_keyword_spec(wb: &Workbench) -> (String, f64) {
    let on = EvalOptions::default();
    let mut off = on;
    off.early_keyword_spec = false;
    ab_table(
        wb,
        "Ablation — early specialization of keyword nodes (isKey)",
        "early",
        "late",
        on,
        off,
    )
}

/// Runs all optimization experiments.
pub fn run(scale: usize) -> String {
    let wb = Workbench::prepare(&DatasetSpec::yago_like(scale), 7, 5);
    let mut out = String::new();
    let (s, _) = spec_order(&wb);
    out.push_str(&s);
    out.push('\n');
    let (s, _) = path_based(&wb);
    out.push_str(&s);
    out.push('\n');
    let (s, _) = early_keyword_spec(&wb);
    out.push_str(&s);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ab_tables_render() {
        let wb = Workbench::prepare(&DatasetSpec::yago_like(2000), 3, 4);
        let (s, _) = spec_order(&wb);
        assert!(s.contains("Fig. 17"));
        let (s, _) = path_based(&wb);
        assert!(s.contains("Fig. 18"));
    }
}
