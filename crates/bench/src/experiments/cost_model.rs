//! Fig. 16 and Exp-4: cost-model effectiveness.
//!
//! 1. **Sampling stability** (Fig. 16): the estimated compression ratio
//!    vs. the number of sampled subgraphs — stable past n ≈ 400.
//! 2. **Estimate fidelity**: Spearman rank correlation between
//!    estimated and exact compression over random configurations
//!    (paper: r_s = 0.541 > 0.326 critical value).
//! 3. **Optimal-layer prediction**: how often the Formula 4 model picks
//!    the empirically fastest layer (paper: 75%), with a β sweep.

use crate::harness::{spearman, TableWriter};
use crate::setup::Workbench;
use bgi_datasets::DatasetSpec;
use bgi_graph::sampling::SamplingParams;
use bgi_search::blinks::{Blinks, BlinksParams};
use big_index::compress::{exact_compress, CompressEstimator};
use big_index::{Boosted, EvalOptions, GenConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Fig. 16: estimate vs. sample count.
pub fn sampling_stability(scale: usize) -> String {
    let ds = DatasetSpec::yago_like(scale).generate();
    let config = crate::setup::full_step_config(&ds.graph, &ds.ontology);
    let exact = exact_compress(&ds.graph, &config, bgi_bisim::BisimDirection::Forward);
    let mut t = TableWriter::new(&["samples n", "estimated compress", "exact"]);
    for n in [25usize, 50, 100, 200, 400, 800] {
        let est = CompressEstimator::new(
            &ds.graph,
            &SamplingParams {
                radius: 2,
                num_samples: n,
                max_ball: 256,
                seed: 7,
            },
            bgi_bisim::BisimDirection::Forward,
        );
        t.row(&[
            n.to_string(),
            format!("{:.4}", est.estimate(&config)),
            format!("{exact:.4}"),
        ]);
    }
    format!(
        "## Fig. 16 — estimated compress vs sample size (yago-like)\n\n{}",
        t.render()
    )
}

/// Spearman correlation between estimated and exact compression over
/// random configurations (Exp-4's r_s).
pub fn estimate_correlation(scale: usize) -> (String, f64) {
    let ds = DatasetSpec::yago_like(scale).generate();
    let est = CompressEstimator::new(
        &ds.graph,
        &SamplingParams {
            radius: 2,
            num_samples: 400,
            max_ball: 256,
            seed: 11,
        },
        bgi_bisim::BisimDirection::Forward,
    );
    let full = crate::setup::full_step_config(&ds.graph, &ds.ontology);
    let all = full.mappings().to_vec();
    let mut rng = StdRng::seed_from_u64(23);
    let mut estimated = Vec::new();
    let mut exact = Vec::new();
    for _ in 0..40 {
        // Random subset of the one-step mappings.
        let subset: Vec<_> = all.iter().copied().filter(|_| rng.gen_bool(0.5)).collect();
        let config = GenConfig::new(subset, &ds.ontology).unwrap();
        estimated.push(est.estimate(&config));
        exact.push(exact_compress(
            &ds.graph,
            &config,
            bgi_bisim::BisimDirection::Forward,
        ));
    }
    let r = spearman(&estimated, &exact);
    (
        format!(
            "## Exp-4 — Spearman correlation of estimated vs exact compress\n\n\
             r_s = {r:.3} over 40 random configurations \
             (paper: 0.541, critical value 0.326 at α = 0.001)\n"
        ),
        r,
    )
}

/// Optimal-layer prediction accuracy with a β sweep (Exp-4 / Fig. 19's
/// companion table).
pub fn layer_prediction(scale: usize) -> (String, f64) {
    let wb = Workbench::prepare(&DatasetSpec::yago_like(scale), 7, 5);
    let blinks = Blinks::new(BlinksParams {
        block_size: 1000,
        prune_dist: 5,
    });
    let mut out = String::new();
    let mut best_accuracy = 0.0f64;
    let mut t = TableWriter::new(&["beta", "accuracy (predicted = fastest layer)"]);
    for beta in [0.1, 0.3, 0.5, 0.7, 0.9] {
        let opts = EvalOptions {
            beta,
            ..EvalOptions::default()
        };
        let boosted = Boosted::new(&wb.index, blinks, opts);
        let mut hits = 0usize;
        for q in &wb.queries {
            let query = q.to_query();
            // Empirical best layer.
            let mut best_layer = 0;
            let mut best_time = std::time::Duration::MAX;
            for m in 0..=wb.index.num_layers() {
                if big_index::query_gen::generalize_query(&wb.index, &query, m).len() != query.len()
                {
                    continue;
                }
                let time = crate::harness::median_time(2, || {
                    boosted.query_at_layer(&query, 10, m).answers
                });
                if time < best_time {
                    best_time = time;
                    best_layer = m;
                }
            }
            if boosted.chosen_layer(&query) == best_layer {
                hits += 1;
            }
        }
        let acc = 100.0 * hits as f64 / wb.queries.len().max(1) as f64;
        best_accuracy = best_accuracy.max(acc);
        t.row(&[format!("{beta:.1}"), format!("{acc:.0}%")]);
    }
    out.push_str("## Exp-4 — optimal query layer prediction (yago-like, Blinks)\n\n");
    out.push_str(&t.render());
    out.push_str("\npaper: 75% accuracy at beta = 0.5.\n");
    (out, best_accuracy)
}

/// All of Exp-4 + Fig. 16.
pub fn run(scale: usize) -> String {
    let mut out = sampling_stability(scale);
    out.push('\n');
    let (corr, _) = estimate_correlation(scale.min(10_000));
    out.push_str(&corr);
    out.push('\n');
    let (pred, _) = layer_prediction(scale);
    out.push_str(&pred);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_stability_renders() {
        let r = sampling_stability(2000);
        assert!(r.contains("400"));
    }

    #[test]
    fn correlation_is_positive() {
        let (_, r) = estimate_correlation(4000);
        assert!(r > 0.3, "spearman r = {r}");
    }
}
