//! Parallel-construction scaling: wall-clock of the full index build
//! (Algo. 1 greedy hierarchy + per-layer BANKS/BLINKS/r-clique
//! indexes) at 1/2/4/8 build threads, on synt and yago.
//!
//! Every thread count must produce the *same* index — the sweep
//! asserts each parallel bundle equals the serial one (down to the
//! encoded `index.bin` bytes) before reporting its time, so a scaling
//! win can never come from silently diverging work. The 1-thread
//! times are the metrics CI's `bench_gate` regresses on: they are
//! core-count independent, unlike the speedups (reported for the CI
//! log, where the runner has cores to show them).

use crate::harness::{fmt_duration, TableWriter};
use bgi_datasets::{Dataset, DatasetSpec};
use bgi_search::blinks::BlinksParams;
use bgi_search::RClique;
use bgi_store::bundle::encode_index;
use bgi_store::IndexBundle;
use big_index::{BiGIndex, BuildParams, EvalOptions};
use std::time::{Duration, Instant};

/// The thread counts the sweep measures.
pub const THREADS: [usize; 4] = [1, 2, 4, 8];

/// One full build at `threads`: greedy hierarchy (sampled estimator +
/// Algo. 1, both parallel) then every per-layer search index. Returns
/// the bundle plus (hierarchy, per-layer index) phase times.
fn timed_build(ds: &Dataset, threads: usize) -> (IndexBundle, Duration, Duration) {
    let params = BuildParams {
        max_layers: 4,
        threads,
        ..BuildParams::default()
    };
    let t = Instant::now();
    let index = BiGIndex::build(ds.graph.clone(), ds.ontology.clone(), &params);
    let hierarchy = t.elapsed();
    let t = Instant::now();
    let bundle = IndexBundle::build_with_threads(
        index,
        BlinksParams::default(),
        RClique::default(),
        EvalOptions::default(),
        threads,
    );
    (bundle, hierarchy, t.elapsed())
}

/// Runs the sweep. Returns the rendered report and the JSON metrics
/// for `BENCH_build.json` (`build_<dataset>_1t_ms` are the gated
/// keys; `speedup_<dataset>_4t` are informational).
pub fn run(scale: usize) -> (String, Vec<(String, f64)>) {
    let mut out = String::from("parallel construction scaling (hierarchy + per-layer indexes)\n");
    let mut metrics: Vec<(String, f64)> = Vec::new();
    for spec in [DatasetSpec::synt(scale), DatasetSpec::yago_like(scale)] {
        let ds = spec.generate();
        let short = short_name(&ds.name);
        out.push_str(&format!(
            "\n{} ({} vertices, {} edges):\n",
            ds.name,
            ds.num_vertices(),
            ds.graph.num_edges()
        ));
        let mut table = TableWriter::new(&[
            "threads",
            "build",
            "hierarchy",
            "indexes",
            "speedup",
            "identical",
        ]);
        let mut serial: Option<(IndexBundle, Vec<u8>, Duration)> = None;
        for threads in THREADS {
            let (bundle, hierarchy, indexes) = timed_build(&ds, threads);
            let elapsed = hierarchy + indexes;
            let bytes = encode_index(&bundle.index);
            let (identical, speedup) = match &serial {
                None => {
                    metrics.push((format!("build_{short}_1t_ms"), elapsed.as_millis() as f64));
                    serial = Some((bundle, bytes, elapsed));
                    (true, 1.0)
                }
                Some((base_bundle, base_bytes, base_time)) => {
                    // The determinism contract (DESIGN.md §8): any
                    // thread count, same bundle, same bytes.
                    assert!(
                        *base_bundle == bundle && *base_bytes == bytes,
                        "{threads}-thread build diverged from serial on {}",
                        ds.name
                    );
                    let speedup = base_time.as_secs_f64() / elapsed.as_secs_f64().max(1e-9);
                    if threads == 4 {
                        metrics.push((format!("speedup_{short}_4t"), speedup));
                    }
                    (true, speedup)
                }
            };
            table.row(&[
                format!("{threads}"),
                fmt_duration(elapsed),
                fmt_duration(hierarchy),
                fmt_duration(indexes),
                format!("{speedup:.2}x"),
                if identical { "yes".into() } else { "NO".into() },
            ]);
        }
        out.push_str(&table.render());
    }
    (out, metrics)
}

/// Stable short key for JSON metric names ("synt-5000" → "synt").
fn short_name(name: &str) -> &str {
    name.split(['-', '_']).next().unwrap_or(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_runs_and_reports_gated_metrics() {
        // Tiny scale: the point here is that the sweep's determinism
        // assertions hold and both gated keys come out, not timing.
        let (report, metrics) = run(120);
        assert!(report.contains("synt"));
        let keys: Vec<&str> = metrics.iter().map(|(k, _)| k.as_str()).collect();
        assert!(keys.contains(&"build_synt_1t_ms"));
        assert!(keys.contains(&"build_yago_1t_ms"));
        assert!(metrics.iter().all(|(_, v)| v.is_finite() && *v >= 0.0));
    }
}
