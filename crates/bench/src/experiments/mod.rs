//! One module per paper experiment; each returns its report as a string
//! (also printed by its binary) plus structured data for `exp_all`'s
//! summary and EXPERIMENTS.md.

pub mod ablations;
pub mod anytime;
pub mod build_scaling;
pub mod cost_model;
pub mod datasets;
pub mod index_sizes;
pub mod ingest;
pub mod layer_sweep;
pub mod optimizations;
pub mod query_perf;
pub mod scaling;
pub mod throughput;
