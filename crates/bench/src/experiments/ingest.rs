//! Ingest throughput: live update batches applied through the
//! incremental maintenance engine (`bgi-ingest`), with the drift
//! tracker consulted after every batch exactly as the serving write
//! path does.
//!
//! The paper's hierarchy is built offline (Sec. 5); this experiment
//! measures the cost of keeping it live. Per-batch cost is dominated by
//! rebuilding the per-layer search indexes of *changed* summaries — a
//! cost nearly independent of batch size — so sustained throughput is a
//! batching story: the sweep shows updates/s rising with batch size,
//! and the single-update number is that same fixed refresh cost paid
//! for one update.

use crate::harness::{fmt_duration, TableWriter};
use crate::setup::default_index;
use bgi_datasets::{update_stream, DatasetSpec, UpdateMix, UpdateOp};
use bgi_ingest::{Engine, EngineConfig, IngestUpdate};
use bgi_search::blinks::BlinksParams;
use bgi_search::RClique;
use bgi_service::{IndexSnapshot, Service, ServiceConfig, WriteHub};
use bgi_store::{IndexBundle, Store};
use big_index::EvalOptions;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Converts a dataset update stream into engine updates.
pub fn as_ingest_updates(ops: &[UpdateOp]) -> Vec<IngestUpdate> {
    ops.iter()
        .map(|op| match *op {
            UpdateOp::InsertEdge { src, dst } => IngestUpdate::InsertEdge { src, dst },
            UpdateOp::DeleteEdge { src, dst } => IngestUpdate::DeleteEdge { src, dst },
            UpdateOp::AddVertex { label } => IngestUpdate::AddVertex { label },
        })
        .collect()
}

/// Scratch directory for the WAL-backed throughput points; removed on
/// drop so repeated runs don't accumulate stores under `$TMPDIR`.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("bgi-bench-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create bench temp dir");
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Order-independent single-edge inserts over existing vertices: the
/// concurrent point scrambles commit order, so every op must be valid
/// and commutative regardless of interleaving.
fn commutative_ops(n: u32, count: usize) -> Vec<IngestUpdate> {
    (0..count as u32)
        .map(|i| {
            let src = (i * 7) % n;
            let mut dst = (i * 13 + 1) % n;
            if dst == src {
                dst = (dst + 1) % n;
            }
            IngestUpdate::InsertEdge { src, dst }
        })
        .collect()
}

fn service_config() -> ServiceConfig {
    ServiceConfig {
        workers: 1,
        queue_capacity: 16,
        cache_shards: 2,
        cache_capacity: 32,
        default_deadline: None,
        degradation: None,
    }
}

/// Best-of-`TRIALS` throughput measurement: peak sustainable rate is
/// the capability being measured, and a single trial is at the mercy
/// of transient page-cache writeback inflating fsync latency.
const COMMIT_TRIALS: usize = 2;

/// WAL-backed write-path throughput, one op per call: a single caller
/// committing serially vs `writers` concurrent callers whose commits
/// coalesce in the [`WriteHub`] group-commit queue. Both sides run the
/// full durable path — WAL append + fsync, summary/index refresh and a
/// snapshot swap per commit cycle. Returns
/// `(serial_per_s, group_per_s, group_fsyncs)`.
fn group_commit_throughput(
    bundle: &IndexBundle,
    writers: usize,
    per_writer: usize,
) -> (f64, f64, u64) {
    let n = bundle.index.base().num_vertices() as u32;
    // One extra op past the measured range warms each engine past the
    // one-time first-apply cost (initial flat-partition stabilization),
    // so both sides time the steady-state commit path.
    let mut ops = commutative_ops(n, writers * per_writer + 1);
    let warmup = ops.pop().expect("nonempty op stream");

    // Serial caller: one durable commit per update.
    let mut serial_per_s = 0f64;
    for _ in 0..COMMIT_TRIALS {
        let dir = TempDir::new("serial");
        let store = Store::open(&dir.0).expect("open serial store");
        let (mut engine, _) =
            Engine::with_wal(bundle.clone(), EngineConfig::default(), &store).expect("seed engine");
        let service = Service::start(
            Arc::new(IndexSnapshot::from_bundle(bundle.clone()).expect("bundle verifies")),
            service_config(),
        );
        service
            .apply_updates(&mut engine, std::slice::from_ref(&warmup))
            .expect("warmup update applies");
        let t = Instant::now();
        for op in &ops {
            service
                .apply_updates(&mut engine, std::slice::from_ref(op))
                .expect("serial update applies");
        }
        serial_per_s = serial_per_s.max(ops.len() as f64 / t.elapsed().as_secs_f64());
    }

    // Group commit: the same updates from concurrent callers.
    let (mut group_per_s, mut fsyncs) = (0f64, 0u64);
    for _ in 0..COMMIT_TRIALS {
        let dir = TempDir::new("group");
        let store = Store::open(&dir.0).expect("open group store");
        let (engine, _) =
            Engine::with_wal(bundle.clone(), EngineConfig::default(), &store).expect("seed engine");
        let hub = WriteHub::new(engine);
        let service = Service::start(
            Arc::new(IndexSnapshot::from_bundle(bundle.clone()).expect("bundle verifies")),
            service_config(),
        );
        service
            .apply_updates_grouped(&hub, vec![warmup])
            .expect("warmup update applies");
        let t = Instant::now();
        std::thread::scope(|s| {
            for w in 0..writers {
                let (service, hub, ops) = (&service, &hub, &ops);
                s.spawn(move || {
                    for k in 0..per_writer {
                        let op = ops[w * per_writer + k];
                        service
                            .apply_updates_grouped(hub, vec![op])
                            .expect("grouped update applies");
                    }
                });
            }
        });
        let trial = ops.len() as f64 / t.elapsed().as_secs_f64();
        if trial > group_per_s {
            group_per_s = trial;
            // Report the fsync count of the trial whose rate we report
            // (minus the warmup commit's own fsync).
            fsyncs = hub.with_engine(|e| e.wal_fsyncs()).saturating_sub(1);
        }
    }
    (serial_per_s, group_per_s, fsyncs)
}

/// One sweep point: apply `stream` in `batch`-sized chunks on a fresh
/// engine, consulting drift after every batch. Returns (wall, rebuilds).
fn apply_all(bundle: &IndexBundle, stream: &[IngestUpdate], batch: usize) -> (Duration, usize) {
    let mut engine =
        Engine::new(bundle.clone(), EngineConfig::default()).expect("bundle seeds the engine");
    let mut rebuilds = 0usize;
    let t = Instant::now();
    for chunk in stream.chunks(batch) {
        engine
            .apply_batch(chunk)
            .expect("generated updates are valid");
        if engine.drift().rebuild_recommended {
            engine.rebuild().expect("rebuild from flat state");
            rebuilds += 1;
        }
    }
    (t.elapsed(), rebuilds)
}

/// Runs the sweep and renders the report.
pub fn run(scale: usize) -> String {
    run_with_metrics(scale).0
}

/// [`run`], also returning the JSON metrics for `BENCH_ingest.json`.
/// Gated key: `batch_8192_ms` (wall time of the largest-batch point,
/// the configuration the sustained-throughput claim rests on).
pub fn run_with_metrics(scale: usize) -> (String, Vec<(String, f64)>) {
    let ds = DatasetSpec::synt(scale).generate();
    let (index, build_time) = default_index(&ds, 3);
    let layers = index.num_layers();
    let bundle = IndexBundle::build(
        index,
        BlinksParams::default(),
        RClique::default(),
        EvalOptions::default(),
    );
    // Stream length scales with the dataset so small smoke runs stay
    // fast; the CI point (scale 2000) applies 8k updates.
    let n_updates = (scale * 4).clamp(512, 16_384);
    let stream = as_ingest_updates(&update_stream(
        &ds.graph,
        crate::setup::DEFAULT_WORKLOAD_SEED,
        n_updates,
        UpdateMix::default(),
    ));

    let mut out = format!(
        "ingest throughput, {} ({} vertices, {} layers, index built in {})\n\
         {} updates per point (6:3:1 insert/delete/add-vertex), drift checked per batch\n\n",
        ds.name,
        ds.num_vertices(),
        layers,
        fmt_duration(build_time),
        stream.len(),
    );

    let mut table = TableWriter::new(&["batch", "wall", "updates/s", "ms/batch", "rebuilds"]);
    let mut metrics: Vec<(String, f64)> = Vec::new();
    for batch in [256usize, 1024, 4096, 8192] {
        let (wall, rebuilds) = apply_all(&bundle, &stream, batch);
        let per_s = stream.len() as f64 / wall.as_secs_f64();
        let batches = stream.len().div_ceil(batch);
        table.row(&[
            format!("{batch}"),
            fmt_duration(wall),
            format!("{per_s:.0}"),
            format!("{:.1}", wall.as_secs_f64() * 1e3 / batches as f64),
            format!("{rebuilds}"),
        ]);
        if batch == 8192 {
            metrics.push(("batch_8192_ms".into(), wall.as_secs_f64() * 1e3));
            metrics.push(("updates_per_s".into(), per_s));
        }
    }
    out.push_str(&table.render());

    // Single-update latency: what one interactive write pays.
    let mut engine =
        Engine::new(bundle.clone(), EngineConfig::default()).expect("bundle seeds the engine");
    let single = &stream[..64.min(stream.len())];
    let t = Instant::now();
    for u in single {
        engine
            .apply_batch(std::slice::from_ref(u))
            .expect("generated updates are valid");
    }
    let per_update = t.elapsed() / single.len() as u32;
    out.push_str(&format!(
        "\nsingle-update latency: {} per update ({} sampled)\n",
        fmt_duration(per_update),
        single.len()
    ));
    metrics.push(("single_update_us".into(), per_update.as_secs_f64() * 1e6));

    // Group commit: 16 concurrent single-op writers through the
    // service's WriteHub vs the same updates from one serial caller,
    // both on the full durable path (WAL fsync + snapshot swap).
    let writers = 16usize;
    let per_writer = 24usize;
    let (serial_per_s, group_per_s, fsyncs) = group_commit_throughput(&bundle, writers, per_writer);
    out.push_str(&format!(
        "group commit: {group_per_s:.0} updates/s with {writers} writers \
         vs {serial_per_s:.0} updates/s serial ({:.1}x, {fsyncs} fsyncs \
         for {} commits)\n",
        group_per_s / serial_per_s,
        writers * per_writer,
    ));
    metrics.push(("group_commit_updates_per_s".into(), group_per_s));
    metrics.push(("serial_commit_updates_per_s".into(), serial_per_s));
    (out, metrics)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_runs_on_a_tiny_dataset() {
        let (report, metrics) = run_with_metrics(300);
        assert!(report.contains("updates/s"));
        let get = |k: &str| {
            let (_, v) = metrics
                .iter()
                .find(|(name, _)| name == k)
                .unwrap_or_else(|| panic!("metric {k} missing"));
            *v
        };
        assert!(get("batch_8192_ms") > 0.0);
        assert!(get("updates_per_s") > 0.0);
        assert!(get("single_update_us") > 0.0);
        assert!(get("group_commit_updates_per_s") > 0.0);
        assert!(get("serial_commit_updates_per_s") > 0.0);
    }
}
