//! Ingest throughput: live update batches applied through the
//! incremental maintenance engine (`bgi-ingest`), with the drift
//! tracker consulted after every batch exactly as the serving write
//! path does.
//!
//! The paper's hierarchy is built offline (Sec. 5); this experiment
//! measures the cost of keeping it live. Per-batch cost is dominated by
//! rebuilding the per-layer search indexes of *changed* summaries — a
//! cost nearly independent of batch size — so sustained throughput is a
//! batching story: the sweep shows updates/s rising with batch size,
//! and the single-update number is that same fixed refresh cost paid
//! for one update.

use crate::harness::{fmt_duration, TableWriter};
use crate::setup::default_index;
use bgi_datasets::{update_stream, DatasetSpec, UpdateMix, UpdateOp};
use bgi_ingest::{Engine, EngineConfig, IngestUpdate};
use bgi_search::blinks::BlinksParams;
use bgi_search::RClique;
use bgi_store::IndexBundle;
use big_index::EvalOptions;
use std::time::{Duration, Instant};

/// Converts a dataset update stream into engine updates.
pub fn as_ingest_updates(ops: &[UpdateOp]) -> Vec<IngestUpdate> {
    ops.iter()
        .map(|op| match *op {
            UpdateOp::InsertEdge { src, dst } => IngestUpdate::InsertEdge { src, dst },
            UpdateOp::DeleteEdge { src, dst } => IngestUpdate::DeleteEdge { src, dst },
            UpdateOp::AddVertex { label } => IngestUpdate::AddVertex { label },
        })
        .collect()
}

/// One sweep point: apply `stream` in `batch`-sized chunks on a fresh
/// engine, consulting drift after each batch. Returns (wall, rebuilds).
fn apply_all(bundle: &IndexBundle, stream: &[IngestUpdate], batch: usize) -> (Duration, usize) {
    let mut engine =
        Engine::new(bundle.clone(), EngineConfig::default()).expect("bundle seeds the engine");
    let mut rebuilds = 0usize;
    let t = Instant::now();
    for chunk in stream.chunks(batch) {
        engine
            .apply_batch(chunk)
            .expect("generated updates are valid");
        if engine.drift().rebuild_recommended {
            engine.rebuild().expect("rebuild from flat state");
            rebuilds += 1;
        }
    }
    (t.elapsed(), rebuilds)
}

/// Runs the sweep and renders the report.
pub fn run(scale: usize) -> String {
    run_with_metrics(scale).0
}

/// [`run`], also returning the JSON metrics for `BENCH_ingest.json`.
/// Gated key: `batch_8192_ms` (wall time of the largest-batch point,
/// the configuration the sustained-throughput claim rests on).
pub fn run_with_metrics(scale: usize) -> (String, Vec<(String, f64)>) {
    let ds = DatasetSpec::synt(scale).generate();
    let (index, build_time) = default_index(&ds, 3);
    let layers = index.num_layers();
    let bundle = IndexBundle::build(
        index,
        BlinksParams::default(),
        RClique::default(),
        EvalOptions::default(),
    );
    // Stream length scales with the dataset so small smoke runs stay
    // fast; the CI point (scale 2000) applies 8k updates.
    let n_updates = (scale * 4).clamp(512, 16_384);
    let stream = as_ingest_updates(&update_stream(
        &ds.graph,
        crate::setup::DEFAULT_WORKLOAD_SEED,
        n_updates,
        UpdateMix::default(),
    ));

    let mut out = format!(
        "ingest throughput, {} ({} vertices, {} layers, index built in {})\n\
         {} updates per point (6:3:1 insert/delete/add-vertex), drift checked per batch\n\n",
        ds.name,
        ds.num_vertices(),
        layers,
        fmt_duration(build_time),
        stream.len(),
    );

    let mut table = TableWriter::new(&["batch", "wall", "updates/s", "ms/batch", "rebuilds"]);
    let mut metrics: Vec<(String, f64)> = Vec::new();
    for batch in [256usize, 1024, 4096, 8192] {
        let (wall, rebuilds) = apply_all(&bundle, &stream, batch);
        let per_s = stream.len() as f64 / wall.as_secs_f64();
        let batches = stream.len().div_ceil(batch);
        table.row(&[
            format!("{batch}"),
            fmt_duration(wall),
            format!("{per_s:.0}"),
            format!("{:.1}", wall.as_secs_f64() * 1e3 / batches as f64),
            format!("{rebuilds}"),
        ]);
        if batch == 8192 {
            metrics.push(("batch_8192_ms".into(), wall.as_secs_f64() * 1e3));
            metrics.push(("updates_per_s".into(), per_s));
        }
    }
    out.push_str(&table.render());

    // Single-update latency: what one interactive write pays.
    let mut engine =
        Engine::new(bundle.clone(), EngineConfig::default()).expect("bundle seeds the engine");
    let single = &stream[..64.min(stream.len())];
    let t = Instant::now();
    for u in single {
        engine
            .apply_batch(std::slice::from_ref(u))
            .expect("generated updates are valid");
    }
    let per_update = t.elapsed() / single.len() as u32;
    out.push_str(&format!(
        "\nsingle-update latency: {} per update ({} sampled)\n",
        fmt_duration(per_update),
        single.len()
    ));
    metrics.push(("single_update_us".into(), per_update.as_secs_f64() * 1e6));
    (out, metrics)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_runs_on_a_tiny_dataset() {
        let (report, metrics) = run_with_metrics(300);
        assert!(report.contains("updates/s"));
        let get = |k: &str| {
            let (_, v) = metrics
                .iter()
                .find(|(name, _)| name == k)
                .unwrap_or_else(|| panic!("metric {k} missing"));
            *v
        };
        assert!(get("batch_8192_ms") > 0.0);
        assert!(get("updates_per_s") > 0.0);
        assert!(get("single_update_us") > 0.0);
    }
}
