//! Anytime search under a wall-clock budget: latency ceiling and
//! quality regret of dkws (r-clique) answers at a 50 ms soft deadline.
//!
//! The paper's search runs to completion; the serving system instead
//! interrupts branch-and-bound at the deadline and returns the
//! best-so-far top-k with an optimality bound. This experiment
//! quantifies both sides of that trade on one workload:
//!
//! * `dkws_anytime_p99_ms` — p99 response latency with a 50 ms soft
//!   deadline. Anytime search exists so this is bounded near the
//!   deadline regardless of query hardness; a regression here means
//!   the cooperative budget stopped being honored.
//! * `dkws_quality_at_50ms_regret` — mean relative score regret of the
//!   best 50 ms answer vs. the exhaustive optimum (scores are
//!   minimized, so regret = (anytime − exact) / exact, 0 when the
//!   budget sufficed). A regression means the greedy seed or the
//!   branch ordering got worse at spending its budget.

use crate::harness::{fmt_duration, TableWriter};
use crate::setup::Workbench;
use bgi_datasets::DatasetSpec;
use bgi_service::{IndexSnapshot, Semantics, Service, ServiceConfig};
use std::sync::Arc;
use std::time::Duration;

/// The wall-clock budget the quality metric is measured at.
pub const SOFT_DEADLINE: Duration = Duration::from_millis(50);

/// Runs the experiment and renders the report.
pub fn run(scale: usize) -> String {
    run_with_metrics(scale).0
}

/// [`run`], also returning the JSON metrics for `BENCH_anytime.json`.
pub fn run_with_metrics(scale: usize) -> (String, Vec<(String, f64)>) {
    let wb = Workbench::prepare(&DatasetSpec::yago_like(scale), 4, 4);
    let snapshot =
        Arc::new(IndexSnapshot::build_default(wb.index.clone()).expect("workbench index verifies"));
    let service = Service::start(
        Arc::clone(&snapshot),
        ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        },
    );
    let mut requests = super::throughput::seeded_requests(
        &wb.dataset,
        4,
        5,
        crate::setup::DEFAULT_WORKLOAD_SEED,
        24,
    );
    for req in &mut requests {
        req.semantics = Semantics::Dkws;
    }

    let mut out = format!(
        "anytime dkws at a {}ms soft deadline, {} ({} vertices, {} queries)\n\n",
        SOFT_DEADLINE.as_millis(),
        wb.dataset.name,
        wb.dataset.num_vertices(),
        requests.len()
    );
    let mut table =
        TableWriter::new(&["query", "deadline", "latency", "anytime", "exact", "regret"]);

    // Budgeted pass first: anytime (non-exact) responses are never
    // cached, so the exhaustive pass below cannot ride a warm entry,
    // while an exact-within-deadline response may — which is fine, the
    // cached value is the same optimum either way.
    let mut latencies: Vec<Duration> = Vec::new();
    let mut regrets: Vec<f64> = Vec::new();
    let mut degraded = 0usize;
    for (i, req) in requests.iter().enumerate() {
        let mut budgeted = req.clone();
        budgeted.soft_deadline = Some(SOFT_DEADLINE);
        let Ok(any) = service.query(budgeted) else {
            // No answer found at all within the budget (or the query is
            // empty of matches): nothing to score.
            continue;
        };
        let Ok(exact) = service.query(req.clone()) else {
            continue;
        };
        let (Some(a), Some(e)) = (any.answers.first(), exact.answers.first()) else {
            continue;
        };
        latencies.push(any.latency);
        if !any.completeness.is_exact() {
            degraded += 1;
        }
        // Scores are minimized; exact is the optimum, so the regret is
        // non-negative up to tie-breaking noise.
        let regret = if e.score > 0 {
            (a.score as f64 - e.score as f64).max(0.0) / e.score as f64
        } else {
            (a.score - e.score.min(a.score)) as f64
        };
        regrets.push(regret);
        table.row(&[
            format!("q{i}"),
            format!("{}", any.completeness),
            fmt_duration(any.latency),
            format!("{}", a.score),
            format!("{}", e.score),
            format!("{regret:.3}"),
        ]);
    }
    assert!(
        !latencies.is_empty(),
        "anytime experiment measured no queries"
    );
    latencies.sort_unstable();
    let p99 = latencies[(latencies.len() * 99)
        .div_ceil(100)
        .saturating_sub(1)
        .min(latencies.len() - 1)];
    let regret = regrets.iter().sum::<f64>() / regrets.len() as f64;

    out.push_str(&table.render());
    out.push_str(&format!(
        "\nmeasured {} queries, {} degraded; p99 {} , mean regret {:.3}\n",
        latencies.len(),
        degraded,
        fmt_duration(p99),
        regret
    ));
    let metrics = vec![
        ("dkws_anytime_p99_ms".into(), p99.as_secs_f64() * 1e3),
        ("dkws_quality_at_50ms_regret".into(), regret),
    ];
    (out, metrics)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_run_is_bounded_and_sound() {
        let (report, metrics) = run_with_metrics(1_500);
        assert!(report.contains("mean regret"));
        let p99 = metrics
            .iter()
            .find(|(k, _)| k == "dkws_anytime_p99_ms")
            .map(|(_, v)| *v)
            .expect("p99 metric present");
        assert!(p99 > 0.0);
        let regret = metrics
            .iter()
            .find(|(k, _)| k == "dkws_quality_at_50ms_regret")
            .map(|(_, v)| *v)
            .expect("regret metric present");
        // Regret is a ratio against the exhaustive optimum: it can
        // never be negative, and on a tiny dataset the 50 ms budget is
        // generous enough to stay modest.
        assert!(regret >= 0.0);
    }
}
