//! Ablations of BiG-index's design choices (beyond the paper's own
//! Exp-5): estimation vs. exact compression, the summarization
//! formalism, and the bisimulation direction.

use crate::harness::{fmt_duration, TableWriter};
use crate::setup::full_step_config;
use bgi_bisim::BisimDirection;
use bgi_datasets::DatasetSpec;
use bgi_graph::sampling::SamplingParams;
use big_index::compress::{exact_compress, CompressEstimator};
use big_index::{BiGIndex, Summarizer};

use std::time::Instant;

/// Ablation A: sampled vs. exact compression estimation — the sampling
/// estimator exists because exact evaluation of every Algo. 1 candidate
/// would bisimulate the whole graph per candidate.
pub fn sampling_vs_exact(scale: usize) -> String {
    let ds = DatasetSpec::yago_like(scale).generate();
    let config = full_step_config(&ds.graph, &ds.ontology);

    let t = Instant::now();
    let exact = exact_compress(&ds.graph, &config, BisimDirection::Forward);
    let exact_time = t.elapsed();

    let t = Instant::now();
    let est = CompressEstimator::new(
        &ds.graph,
        &SamplingParams {
            radius: 2,
            num_samples: 400,
            max_ball: 256,
            seed: 5,
        },
        BisimDirection::Forward,
    );
    let setup_time = t.elapsed();
    let t = Instant::now();
    let estimate = est.estimate(&config);
    let estimate_time = t.elapsed();

    let mut t = TableWriter::new(&["method", "compress", "time"]);
    t.row(&[
        "exact (full χ)".into(),
        format!("{exact:.4}"),
        fmt_duration(exact_time),
    ]);
    t.row(&[
        "sampled (n=400, r=2)".into(),
        format!("{estimate:.4}"),
        format!(
            "{} (+{} sampling)",
            fmt_duration(estimate_time),
            fmt_duration(setup_time)
        ),
    ]);
    format!(
        "## Ablation A — sampled vs exact compression estimation (yago-like/{scale})\n\n{}",
        t.render()
    )
}

/// Ablation B: summarization formalism — maximal bisimulation (the
/// paper's choice) vs. k-bounded bisimulation (its named future work).
pub fn summarizer_ablation(scale: usize) -> String {
    let ds = DatasetSpec::yago_like(scale).generate();
    let config = full_step_config(&ds.graph, &ds.ontology);
    let mut t = TableWriter::new(&["summarizer", "layer-1 size", "ratio", "build time"]);
    for (name, s) in [
        ("maximal", Summarizer::Maximal),
        ("k-bisim k=4", Summarizer::KBounded(4)),
        ("k-bisim k=2", Summarizer::KBounded(2)),
        ("k-bisim k=1", Summarizer::KBounded(1)),
    ] {
        let start = Instant::now();
        let index = BiGIndex::build_with_configs_summarizer(
            ds.graph.clone(),
            ds.ontology.clone(),
            vec![config.clone()],
            BisimDirection::Forward,
            s,
        );
        let built = start.elapsed();
        t.row(&[
            name.into(),
            index.graph_at(1).size().to_string(),
            format!("{:.4}", index.size_ratio(1)),
            fmt_duration(built),
        ]);
    }
    format!(
        "## Ablation B — summarization formalism (yago-like/{scale})\n\n{}",
        t.render()
    )
}

/// Ablation C: bisimulation direction — forward (the default, aligned
/// with the traversal direction of the search semantics) vs. backward
/// vs. both.
pub fn direction_ablation(scale: usize) -> String {
    let ds = DatasetSpec::yago_like(scale).generate();
    let config = full_step_config(&ds.graph, &ds.ontology);
    let mut t = TableWriter::new(&["direction", "layer-1 size", "ratio"]);
    for (name, dir) in [
        ("forward", BisimDirection::Forward),
        ("backward", BisimDirection::Backward),
        ("both", BisimDirection::Both),
    ] {
        let index = BiGIndex::build_with_configs(
            ds.graph.clone(),
            ds.ontology.clone(),
            vec![config.clone()],
            dir,
        );
        t.row(&[
            name.into(),
            index.graph_at(1).size().to_string(),
            format!("{:.4}", index.size_ratio(1)),
        ]);
    }
    format!(
        "## Ablation C — bisimulation direction (yago-like/{scale})\n\n{}",
        t.render()
    )
}

/// Ablation D: Algo. 1 greedy configurations vs. the "default index"
/// full-step configurations — the greedy search trades compression for
/// lower semantic distortion per its cost model.
pub fn greedy_vs_full_step(scale: usize) -> String {
    use big_index::cost::CostParams;
    use big_index::BuildParams;
    let ds = DatasetSpec::yago_like(scale).generate();

    let t = Instant::now();
    let (full, _) = crate::setup::default_index(&ds, 3);
    let full_time = t.elapsed();

    let t = Instant::now();
    let greedy = BiGIndex::build(
        ds.graph.clone(),
        ds.ontology.clone(),
        &BuildParams {
            cost: CostParams {
                alpha: 0.5,
                theta: 0.6,
                pi: usize::MAX,
            },
            sampling: SamplingParams {
                radius: 2,
                num_samples: 200,
                max_ball: 256,
                seed: 3,
            },
            direction: BisimDirection::Forward,
            max_layers: 3,
            min_gain_ratio: 0.98,
            summarizer: Summarizer::Maximal,
            threads: 1,
        },
    );
    let greedy_time = t.elapsed();

    let mut t = TableWriter::new(&[
        "construction",
        "layers",
        "layer-1 ratio",
        "|C¹|",
        "build time",
    ]);
    t.row(&[
        "full-step (default)".into(),
        full.num_layers().to_string(),
        format!("{:.4}", full.size_ratio(1)),
        full.layer(1).config.len().to_string(),
        fmt_duration(full_time),
    ]);
    if greedy.num_layers() >= 1 {
        t.row(&[
            "greedy (Algo. 1, θ=0.6)".into(),
            greedy.num_layers().to_string(),
            format!("{:.4}", greedy.size_ratio(1)),
            greedy.layer(1).config.len().to_string(),
            fmt_duration(greedy_time),
        ]);
    }
    format!(
        "## Ablation D — Algo. 1 greedy vs full-step configurations (yago-like/{scale})

{}",
        t.render()
    )
}

/// All ablations.
pub fn run(scale: usize) -> String {
    let scale = scale.min(10_000);
    let mut out = sampling_vs_exact(scale);
    out.push('\n');
    out.push_str(&summarizer_ablation(scale));
    out.push('\n');
    out.push_str(&direction_ablation(scale));
    out.push('\n');
    out.push_str(&greedy_vs_full_step(scale.min(5_000)));
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn ablations_render() {
        let report = super::run(1500);
        assert!(report.contains("Ablation A"));
        assert!(report.contains("Ablation B"));
        assert!(report.contains("Ablation C"));
        assert!(report.contains("maximal"));
    }
}
