//! Fig. 15: query times of Blinks and r-clique (± BiG-index) on the
//! synt-N family, |Q| = 4.

use crate::experiments::query_perf::{blinks_rows, mean_reduction, rclique_rows};
use crate::harness::{fmt_duration, TableWriter};
use crate::setup::Workbench;
use bgi_datasets::DatasetSpec;
use bgi_search::rclique::NeighborIndex;
use std::time::Duration;

/// The r-clique side of Fig. 15 is skipped for a graph whose neighbor
/// list would not fit in a laptop's memory — the same phenomenon that
/// keeps r-clique off the paper's IMDB (Sec. 6.2).
const RCLIQUE_BUDGET_BYTES: usize = 1 << 30;

/// Renders Fig. 15 for synt graphs at 1×, 2×, 4×, 8× the base scale.
pub fn run(scale: usize) -> String {
    let base = scale / 4;
    let mut out = String::new();
    out.push_str("## Fig. 15 — query times on synthetic graphs (|Q| = 4)\n\n");
    let mut t = TableWriter::new(&[
        "Dataset",
        "Blinks base",
        "Blinks BiG",
        "Blinks red.",
        "r-clique base",
        "r-clique BiG",
        "r-clique red.",
    ]);
    for mult in [1usize, 2, 4, 8] {
        let spec = DatasetSpec::synt(base * mult);
        let wb = Workbench::prepare(&spec, 5, 4);
        // |Q| = 4: keep only 4-keyword queries (Q6 in the workload), or
        // the closest available.
        let four: Vec<_> = wb
            .queries
            .iter()
            .filter(|q| q.keywords.len() == 4)
            .cloned()
            .collect();
        let wb4 = Workbench {
            queries: if four.is_empty() {
                wb.queries.clone()
            } else {
                four
            },
            ..wb
        };
        let b = blinks_rows(&wb4);
        let rclique_bytes = NeighborIndex::estimate_bytes(&wb4.dataset.graph, 4);
        let r = if rclique_bytes <= RCLIQUE_BUDGET_BYTES {
            rclique_rows(&wb4)
        } else {
            Vec::new()
        };
        let avg = |rows: &[super::query_perf::QueryPerfRow],
                   f: fn(&super::query_perf::QueryPerfRow) -> Duration| {
            if rows.is_empty() {
                Duration::ZERO
            } else {
                rows.iter().map(f).sum::<Duration>() / rows.len() as u32
            }
        };
        if r.is_empty() {
            t.row(&[
                spec.name().to_string(),
                fmt_duration(avg(&b, |r| r.baseline)),
                fmt_duration(avg(&b, |r| r.boosted)),
                format!("{:.1}%", mean_reduction(&b)),
                format!("skipped (~{:.1} GB index)", rclique_bytes as f64 / 1e9),
                "-".into(),
                "-".into(),
            ]);
        } else {
            t.row(&[
                spec.name().to_string(),
                fmt_duration(avg(&b, |r| r.baseline)),
                fmt_duration(avg(&b, |r| r.boosted)),
                format!("{:.1}%", mean_reduction(&b)),
                fmt_duration(avg(&r, |x| x.baseline)),
                fmt_duration(avg(&r, |x| x.boosted)),
                format!("{:.1}%", mean_reduction(&r)),
            ]);
        }
    }
    out.push_str(&t.render());
    out.push_str("\npaper: BiG-index reduced query times on synthetic datasets by at least 20%.\n");
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn scaling_report_renders() {
        let report = super::run(1600);
        assert!(report.contains("Fig. 15"));
        assert!(report.contains("synt-"));
    }
}
