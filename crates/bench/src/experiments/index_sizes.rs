//! Tab. 3 (layer-1 index sizes), Fig. 9 (per-layer sizes), and the
//! construction times of Exp-3.

use crate::harness::{fmt_duration, TableWriter};
use crate::setup::default_index;
use bgi_datasets::DatasetSpec;

/// Renders Tab. 3 + Fig. 9 + construction times.
pub fn run(scale: usize) -> String {
    let max_layers = 7;
    let mut out = String::new();

    let specs = [
        DatasetSpec::yago_like(scale),
        DatasetSpec::dbpedia_like(scale),
        DatasetSpec::imdb_like(scale),
        DatasetSpec::synt(scale / 2),
        DatasetSpec::synt(scale),
        DatasetSpec::synt(scale * 2),
        DatasetSpec::synt(scale * 4),
    ];

    let mut tab3 = TableWriter::new(&["Dataset", "Layer-1 size (|V|+|E|)", "Size ratio"]);
    let mut fig9 = TableWriter::new(&["Dataset", "L0", "L1", "L2", "L3", "L4", "L5", "L6", "L7"]);
    let mut times = TableWriter::new(&["Dataset", "Construction time (all layers)"]);

    for spec in &specs {
        let ds = spec.generate();
        let (index, build_time) = default_index(&ds, max_layers);
        let sizes = index.layer_sizes();
        if sizes.len() > 1 {
            let g1 = index.graph_at(1);
            tab3.row(&[
                ds.name.clone(),
                format!("{} + {}", g1.num_vertices(), g1.num_edges()),
                format!("{:.4}", index.size_ratio(1)),
            ]);
        }
        let mut cells = vec![ds.name.clone()];
        for i in 0..=7usize {
            cells.push(sizes.get(i).map_or_else(|| "-".into(), usize::to_string));
        }
        fig9.row(&cells);
        times.row(&[ds.name.clone(), fmt_duration(build_time)]);
    }

    out.push_str("## Tab. 3 — index size of layer 1 of BiG-index\n\n");
    out.push_str(&tab3.render());
    out.push_str("\n## Fig. 9 — summary graph sizes (|V|+|E|) at different layers\n\n");
    out.push_str(&fig9.render());
    out.push_str("\n## Exp-3 — construction time\n\n");
    out.push_str(&times.render());
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn report_has_ratios_below_one() {
        let report = super::run(2000);
        assert!(report.contains("Tab. 3"));
        assert!(report.contains("Fig. 9"));
        assert!(report.contains("yago-like"));
        // A ratio cell like 0.xxxx must appear.
        assert!(report.contains("0."));
    }
}
