//! Figs. 10–14: per-query times of Blinks and r-clique with and without
//! BiG-index, including the step breakdown (summary-graph search /
//! specialization+pruning / answer generation).

use crate::harness::{fmt_duration, median_time, reduction_pct, TableWriter};
use crate::setup::Workbench;
use bgi_datasets::DatasetSpec;
use bgi_search::blinks::{Blinks, BlinksParams};
use bgi_search::rclique::NeighborIndex;
use bgi_search::RClique;
use big_index::{boost::boost_dkws, Boosted, EvalOptions};
use std::time::Duration;

/// Result of one query, both sides.
#[derive(Debug, Clone)]
pub struct QueryPerfRow {
    /// Query id.
    pub id: String,
    /// Baseline (no BiG-index) time.
    pub baseline: Duration,
    /// Boosted (with BiG-index) total time.
    pub boosted: Duration,
    /// Chosen layer.
    pub layer: usize,
    /// Breakdown: search on summary.
    pub search: Duration,
    /// Breakdown: specialize + prune.
    pub spec_prune: Duration,
    /// Breakdown: answer generation.
    pub answer_gen: Duration,
}

const TOP_K: usize = 10;
const RUNS: usize = 3;

/// Measures Blinks ± BiG-index on one dataset.
pub fn blinks_rows(wb: &Workbench) -> Vec<QueryPerfRow> {
    let blinks = Blinks::new(BlinksParams {
        block_size: 1000,
        prune_dist: 5,
    });
    let boosted = Boosted::new(&wb.index, blinks, EvalOptions::default());
    measure(wb, &boosted)
}

/// Measures r-clique ± BiG-index on one dataset.
pub fn rclique_rows(wb: &Workbench) -> Vec<QueryPerfRow> {
    let rc = RClique {
        radius: 4,
        max_index_bytes: None,
    };
    let boosted = boost_dkws(&wb.index, rc, EvalOptions::default());
    measure(wb, &boosted)
}

fn measure<F: bgi_search::KeywordSearch>(
    wb: &Workbench,
    boosted: &Boosted<'_, F>,
) -> Vec<QueryPerfRow> {
    let mut rows = Vec::new();
    for q in &wb.queries {
        let query = q.to_query();
        let baseline = median_time(RUNS, || boosted.baseline(&query, TOP_K).0);
        let result = boosted.query(&query, TOP_K);
        let boosted_time = median_time(RUNS, || boosted.query(&query, TOP_K).answers);
        rows.push(QueryPerfRow {
            id: q.id.clone(),
            baseline,
            boosted: boosted_time,
            layer: result.layer,
            search: result.timings.search,
            spec_prune: result.timings.spec_prune,
            answer_gen: result.timings.answer_gen,
        });
    }
    rows
}

/// Renders one figure's table.
pub fn render_rows(title: &str, rows: &[QueryPerfRow]) -> String {
    let mut t = TableWriter::new(&[
        "Query",
        "baseline",
        "BiG-index",
        "reduction",
        "layer",
        "search",
        "spec+prune",
        "ans-gen",
    ]);
    for r in rows {
        t.row(&[
            r.id.clone(),
            fmt_duration(r.baseline),
            fmt_duration(r.boosted),
            format!("{:.1}%", reduction_pct(r.baseline, r.boosted)),
            r.layer.to_string(),
            fmt_duration(r.search),
            fmt_duration(r.spec_prune),
            fmt_duration(r.answer_gen),
        ]);
    }
    format!("## {title}\n\n{}", t.render())
}

/// Mean percentage reduction across rows.
pub fn mean_reduction(rows: &[QueryPerfRow]) -> f64 {
    if rows.is_empty() {
        return 0.0;
    }
    rows.iter()
        .map(|r| reduction_pct(r.baseline, r.boosted))
        .sum::<f64>()
        / rows.len() as f64
}

/// Figs. 10–12: Blinks on yago-like, dbpedia-like, imdb-like.
pub fn run_blinks(scale: usize) -> (String, Vec<f64>) {
    let mut out = String::new();
    let mut reductions = Vec::new();
    for (fig, spec) in [
        (
            "Fig. 10 — Blinks on yago-like",
            DatasetSpec::yago_like(scale),
        ),
        (
            "Fig. 11 — Blinks on dbpedia-like",
            DatasetSpec::dbpedia_like(scale),
        ),
        (
            "Fig. 12 — Blinks on imdb-like",
            DatasetSpec::imdb_like(scale),
        ),
    ] {
        let wb = Workbench::prepare(&spec, 7, 5);
        let rows = blinks_rows(&wb);
        out.push_str(&render_rows(fig, &rows));
        out.push_str(&format!(
            "mean reduction: {:.1}% (paper: 61.8% / 57.3% / 32.5%)\n\n",
            mean_reduction(&rows)
        ));
        reductions.push(mean_reduction(&rows));
    }
    (out, reductions)
}

/// Figs. 13–14: r-clique on yago-like and dbpedia-like, plus the IMDB
/// neighbor-list blow-up reproduction.
pub fn run_rclique(scale: usize) -> (String, Vec<f64>) {
    let scale = scale.min(8_000);
    let mut out = String::new();
    let mut reductions = Vec::new();
    for (fig, spec) in [
        (
            "Fig. 13 — r-clique on yago-like",
            DatasetSpec::yago_like(scale),
        ),
        (
            "Fig. 14 — r-clique on dbpedia-like",
            DatasetSpec::dbpedia_like(scale),
        ),
    ] {
        let wb = Workbench::prepare(&spec, 7, 4);
        let rows = rclique_rows(&wb);
        out.push_str(&render_rows(fig, &rows));
        out.push_str(&format!(
            "mean reduction: {:.1}% (paper: 39.4% / 19.6%)\n\n",
            mean_reduction(&rows)
        ));
        reductions.push(mean_reduction(&rows));
    }

    // The paper: "r-clique can not handle the IMDB dataset since it
    // keeps an O(mn) neighbor list … estimated 16TB". Reproduce the
    // estimate at the paper's full IMDB scale by extrapolation.
    let imdb = DatasetSpec::imdb_like(scale * 2).generate();
    let bytes_scaled = NeighborIndex::estimate_bytes(&imdb.graph, 4);
    let per_vertex = bytes_scaled as f64 / imdb.num_vertices().max(1) as f64;
    let full_estimate = per_vertex * 1_673_076.0; // paper's IMDB |V|
    out.push_str(&format!(
        "## r-clique on imdb-like — neighbor-list size check\n\n\
         estimated neighbor list at scale {}: {:.1} MB; extrapolated to the \
         paper's IMDB (1.67M vertices): {:.1} GB (paper estimated 16 TB on \
         the real IMDB, whose neighborhoods are far denser).\n\n",
        imdb.num_vertices(),
        bytes_scaled as f64 / 1e6,
        full_estimate / 1e9,
    ));
    (out, reductions)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blinks_rows_small_scale() {
        let wb = Workbench::prepare(&DatasetSpec::yago_like(2000), 3, 4);
        let rows = blinks_rows(&wb);
        assert!(!rows.is_empty());
        let rendered = render_rows("test", &rows);
        assert!(rendered.contains("Q1"));
    }

    #[test]
    fn rclique_rows_small_scale() {
        let wb = Workbench::prepare(&DatasetSpec::yago_like(1500), 3, 4);
        let rows = rclique_rows(&wb);
        assert!(!rows.is_empty());
        let _ = mean_reduction(&rows);
    }
}
