//! Timing and table-formatting helpers shared by the experiments.

use std::time::{Duration, Instant};

/// Runs `f` `runs` times and returns the median wall-clock duration.
/// The first (warm-up) run is not counted.
pub fn median_time<T>(runs: usize, mut f: impl FnMut() -> T) -> Duration {
    assert!(runs > 0);
    let _warmup = f();
    let mut times: Vec<Duration> = (0..runs)
        .map(|_| {
            let t = Instant::now();
            std::hint::black_box(f());
            t.elapsed()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

/// Fixed-width text table writer for experiment reports.
#[derive(Debug, Default)]
pub struct TableWriter {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TableWriter {
    /// Starts a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        TableWriter {
            header: header
                .iter()
                .map(std::string::ToString::to_string)
                .collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must match the header length).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("| ");
            for i in 0..ncols {
                line.push_str(&format!("{:width$}", cells[i], width = widths[i]));
                line.push_str(" | ");
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let mut sep = String::from("|");
        for w in &widths {
            sep.push_str(&"-".repeat(w + 2));
            sep.push('|');
        }
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a duration in adaptive units.
pub fn fmt_duration(d: Duration) -> String {
    let us = d.as_micros();
    if us < 1_000 {
        format!("{us}µs")
    } else if us < 1_000_000 {
        format!("{:.2}ms", us as f64 / 1_000.0)
    } else {
        format!("{:.2}s", us as f64 / 1_000_000.0)
    }
}

/// Percentage reduction of `new` vs `old` (positive = faster).
pub fn reduction_pct(old: Duration, new: Duration) -> f64 {
    if old.is_zero() {
        return 0.0;
    }
    100.0 * (1.0 - new.as_secs_f64() / old.as_secs_f64())
}

/// Spearman rank correlation between two equally long samples.
pub fn spearman(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    let n = a.len();
    if n < 2 {
        return 1.0;
    }
    let rank = |xs: &[f64]| -> Vec<f64> {
        let mut idx: Vec<usize> = (0..xs.len()).collect();
        idx.sort_by(|&i, &j| xs[i].partial_cmp(&xs[j]).unwrap());
        let mut r = vec![0.0; xs.len()];
        let mut i = 0;
        while i < idx.len() {
            // Average ranks for ties.
            let mut j = i;
            while j + 1 < idx.len() && xs[idx[j + 1]] == xs[idx[i]] {
                j += 1;
            }
            let avg = (i + j) as f64 / 2.0 + 1.0;
            for &k in &idx[i..=j] {
                r[k] = avg;
            }
            i = j + 1;
        }
        r
    };
    let ra = rank(a);
    let rb = rank(b);
    let mean = (n as f64 + 1.0) / 2.0;
    let mut num = 0.0;
    let mut da = 0.0;
    let mut db = 0.0;
    for i in 0..n {
        num += (ra[i] - mean) * (rb[i] - mean);
        da += (ra[i] - mean).powi(2);
        db += (rb[i] - mean).powi(2);
    }
    if da == 0.0 || db == 0.0 {
        return 0.0;
    }
    num / (da * db).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = TableWriter::new(&["name", "value"]);
        t.row(&["a".into(), "1".into()]);
        t.row(&["longer".into(), "22".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
        assert!(s.contains("longer"));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn row_arity_checked() {
        let mut t = TableWriter::new(&["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn median_time_positive() {
        let d = median_time(3, || std::thread::sleep(Duration::from_micros(50)));
        assert!(d >= Duration::from_micros(40));
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_micros(500)), "500µs");
        assert_eq!(fmt_duration(Duration::from_millis(5)), "5.00ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00s");
    }

    #[test]
    fn reduction_math() {
        let old = Duration::from_millis(100);
        let new = Duration::from_millis(50);
        assert!((reduction_pct(old, new) - 50.0).abs() < 1e-9);
        assert!(reduction_pct(Duration::ZERO, new).abs() < 1e-9);
    }

    #[test]
    fn spearman_perfect_and_inverse() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [10.0, 20.0, 30.0, 40.0];
        assert!((spearman(&a, &b) - 1.0).abs() < 1e-9);
        let c = [40.0, 30.0, 20.0, 10.0];
        assert!((spearman(&a, &c) + 1.0).abs() < 1e-9);
    }

    #[test]
    fn spearman_handles_ties() {
        let a = [1.0, 1.0, 2.0, 3.0];
        let b = [5.0, 5.0, 6.0, 7.0];
        let r = spearman(&a, &b);
        assert!(r > 0.9);
    }
}
