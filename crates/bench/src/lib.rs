//! # bgi-bench
//!
//! The benchmark harness regenerating every table and figure of the
//! BiG-index paper's evaluation (Sec. 6). Each experiment lives in
//! [`experiments`] and has a thin binary wrapper
//! (`cargo run -p bgi-bench --release --bin exp_<name>`); `exp_all`
//! runs the full suite and prints the headline comparison.
//!
//! | Paper artifact | Module | Binary |
//! |---|---|---|
//! | Tab. 2 (datasets), Tab. 4 (queries) | [`experiments::datasets`] | `exp_datasets` |
//! | Tab. 3, Fig. 9, construction time | [`experiments::index_sizes`] | `exp_index_sizes` |
//! | Figs. 10–12 (Blinks ± BiG-index) | [`experiments::query_perf`] | `exp_query_blinks` |
//! | Figs. 13–14 (r-clique ± BiG-index) | [`experiments::query_perf`] | `exp_query_rclique` |
//! | Fig. 15 (synthetic scaling) | [`experiments::scaling`] | `exp_synthetic_scaling` |
//! | Fig. 16, Exp-4 (cost model) | [`experiments::cost_model`] | `exp_cost_model` |
//! | Figs. 17–18 (optimizations) | [`experiments::optimizations`] | `exp_optimizations` |
//! | Fig. 19, Exp-6 (layer sweep) | [`experiments::layer_sweep`] | `exp_layer_sweep` |
//! | Serving throughput (beyond the paper) | [`experiments::throughput`] | `exp_throughput` |
//! | Parallel build scaling (beyond the paper) | [`experiments::build_scaling`] | `exp_build_scaling` |
//!
//! `exp_build_scaling` and `exp_throughput` also write their gated
//! metrics as flat JSON ([`json`]) — `BENCH_build.json` and
//! `BENCH_throughput.json` — which CI's `bench_gate` binary compares
//! against `ci/bench_baseline.json`.
//!
//! Scale defaults keep the full suite in laptop range; set `BGI_SCALE`
//! to raise the vertex counts toward the paper's (2.6M–8M).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod harness;
pub mod json;
pub mod setup;

pub use harness::{median_time, TableWriter};
pub use setup::{default_index, scale_from_env, Workbench};
