//! Minimal flat-JSON emission and parsing for benchmark artifacts.
//!
//! CI jobs exchange bench results as flat JSON objects — one string
//! `"experiment"` key plus numeric metrics — so the regression gate
//! (`bench_gate`) can diff a run against `ci/bench_baseline.json`
//! without pulling a serde stack into the workspace (the build is
//! offline; see DESIGN.md §10). The subset implemented here is exactly
//! what those artifacts need: one non-nested object, string and finite
//! f64 values, `//`-free, UTF-8.

use std::collections::BTreeMap;
use std::path::Path;

/// A scalar value in a flat bench-artifact object.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A finite number (integers render without a fraction).
    Num(f64),
    /// A string (escapes limited to `\"`, `\\`, `\n`, `\t`).
    Str(String),
}

impl Value {
    /// The numeric value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(x) => Some(*x),
            Value::Str(_) => None,
        }
    }
}

fn fmt_num(x: f64) -> String {
    if x.fract() == 0.0 && x.abs() < 1e15 {
        format!("{x:.0}")
    } else {
        format!("{x:.4}")
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c => out.push(c),
        }
    }
    out
}

/// Renders a bench artifact: `{"experiment": <name>, <metrics...>}`,
/// metrics in the given order, one key per line.
pub fn render(experiment: &str, metrics: &[(String, f64)]) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"experiment\": \"{}\"", escape(experiment)));
    for (k, v) in metrics {
        out.push_str(",\n");
        out.push_str(&format!("  \"{}\": {}", escape(k), fmt_num(*v)));
    }
    out.push_str("\n}\n");
    out
}

/// Resolves where a CI bench artifact lands: `$BGI_BENCH_OUT/<name>`
/// when the env var is set (the CI jobs point it at the artifact
/// upload dir), else `./<name>`.
pub fn artifact_path(name: &str) -> std::path::PathBuf {
    match std::env::var_os("BGI_BENCH_OUT") {
        Some(dir) => Path::new(&dir).join(name),
        None => std::path::PathBuf::from(name),
    }
}

/// Renders and writes a bench artifact to `path`.
pub fn write_metrics(
    path: &Path,
    experiment: &str,
    metrics: &[(String, f64)],
) -> std::io::Result<()> {
    std::fs::write(path, render(experiment, metrics))
}

/// Parses a flat JSON object (string/number values only). Returns the
/// key → value map; duplicate keys keep the last occurrence.
pub fn parse_flat(text: &str) -> Result<BTreeMap<String, Value>, String> {
    let mut p = Parser {
        chars: text.chars().collect(),
        pos: 0,
    };
    p.skip_ws();
    p.expect('{')?;
    let mut map = BTreeMap::new();
    p.skip_ws();
    if p.peek() == Some('}') {
        p.pos += 1;
        return Ok(map);
    }
    loop {
        p.skip_ws();
        let key = p.string()?;
        p.skip_ws();
        p.expect(':')?;
        p.skip_ws();
        let value = p.value()?;
        map.insert(key, value);
        p.skip_ws();
        match p.next() {
            Some(',') => {}
            Some('}') => break,
            other => return Err(format!("expected ',' or '}}', got {other:?}")),
        }
    }
    p.skip_ws();
    if p.pos != p.chars.len() {
        return Err(format!("trailing input at offset {}", p.pos));
    }
    Ok(map)
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn skip_ws(&mut self) {
        while self.peek().is_some_and(char::is_whitespace) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, want: char) -> Result<(), String> {
        match self.next() {
            Some(c) if c == want => Ok(()),
            other => Err(format!("expected {want:?}, got {other:?}")),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.next() {
                Some('"') => return Ok(out),
                Some('\\') => match self.next() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('n') => out.push('\n'),
                    Some('t') => out.push('\t'),
                    other => return Err(format!("unsupported escape {other:?}")),
                },
                Some(c) => out.push(c),
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        if self.peek() == Some('"') {
            return self.string().map(Value::Str);
        }
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E'))
        {
            self.pos += 1;
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let metrics = vec![
            ("build_synt_ms".to_string(), 123.0),
            ("p95_us".to_string(), 4567.25),
        ];
        let text = render("build_scaling", &metrics);
        let map = parse_flat(&text).expect("render output parses");
        assert_eq!(
            map.get("experiment"),
            Some(&Value::Str("build_scaling".into()))
        );
        assert_eq!(
            map.get("build_synt_ms").and_then(Value::as_num),
            Some(123.0)
        );
        assert_eq!(map.get("p95_us").and_then(Value::as_num), Some(4567.25));
    }

    #[test]
    fn empty_object_and_errors() {
        assert!(parse_flat("{}").expect("empty object").is_empty());
        assert!(parse_flat("{").is_err());
        assert!(parse_flat("{\"a\": }").is_err());
        assert!(parse_flat("{\"a\": 1} x").is_err());
        assert!(parse_flat("not json").is_err());
    }

    #[test]
    fn escapes_survive() {
        let text = render("quo\"te\nline", &[]);
        let map = parse_flat(&text).expect("escaped render parses");
        assert_eq!(
            map.get("experiment"),
            Some(&Value::Str("quo\"te\nline".into()))
        );
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(fmt_num(42.0), "42");
        assert_eq!(fmt_num(1.5), "1.5000");
    }
}
