use bgi_datasets::DatasetSpec;
use bgi_search::blinks::{Blinks, BlinksParams};
use big_index::{Boosted, EvalOptions};
use std::time::Instant;

fn main() {
    for spec in [
        DatasetSpec::yago_like(20_000),
        DatasetSpec::imdb_like(20_000),
    ] {
        let ds = spec.generate();
        let (index, _) = bgi_bench::setup::default_index(&ds, 7);
        let min_count = (ds.num_vertices() / 100).max(3) as u32;
        let queries = bgi_datasets::benchmark_queries(&ds, 5, min_count, 0xC0FFEE);
        let blinks = Blinks::new(BlinksParams {
            block_size: 1000,
            prune_dist: 5,
        });
        let boosted = Boosted::new(&index, blinks, EvalOptions::default());
        println!("== {} sizes={:?}", ds.name, index.layer_sizes());
        for q in &queries {
            let query = q.to_query();
            print!("{} (|Q|={}):", q.id, query.len());
            for m in 0..=index.num_layers() {
                if big_index::query_gen::generalize_query(&index, &query, m).len() != query.len() {
                    print!("  m{m}=merge");
                    continue;
                }
                let t = Instant::now();
                let r = boosted.query_at_layer(&query, 10, m);
                let el = t.elapsed();
                print!("  m{m}={:?}({})", el, r.answers.len());
            }
            println!("  chosen={}", boosted.chosen_layer(&query));
        }
    }
}
