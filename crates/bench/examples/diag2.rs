use bgi_datasets::DatasetSpec;
use bgi_search::blinks::{Blinks, BlinksParams};
use bgi_search::KeywordSearch;
use big_index::query_gen::generalize_query;
use std::time::Instant;

fn main() {
    let spec = DatasetSpec::dbpedia_like(10_000);
    let ds = spec.generate();
    let (index, _) = bgi_bench::setup::default_index(&ds, 7);
    let min_count = (ds.num_vertices() / 100).max(3) as u32;
    let queries = bgi_datasets::benchmark_queries(&ds, 5, min_count, 0xC0FFEE);
    let blinks = Blinks::new(BlinksParams {
        block_size: 1000,
        prune_dist: 5,
    });
    let q = queries[4].to_query(); // Q5
    println!(
        "layers: {}, sizes: {:?}",
        index.num_layers(),
        index.layer_sizes()
    );
    for m in 0..=2.min(index.num_layers()) {
        let g = index.graph_at(m);
        let idx = blinks.build_index(g);
        let gq = generalize_query(&index, &q, m);
        // keyword list lengths
        for &kw in &gq.keywords {
            let len = idx
                .keyword_node_list(kw)
                .map_or(0, <[(u16, bgi_graph::ids::VId)]>::len);
            let count = g.vertices().filter(|&v| g.label(v) == kw).count();
            print!(" kw{kw:?}: count={count} list={len} |");
        }
        println!();
        let t = Instant::now();
        let ans = blinks.search(g, &idx, &gq, 10);
        println!(
            "layer {m}: |G|={} search={:?} answers={} best_scores={:?}",
            g.size(),
            t.elapsed(),
            ans.len(),
            ans.iter().take(5).map(|a| a.score).collect::<Vec<_>>()
        );
    }
}
