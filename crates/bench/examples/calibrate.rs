use bgi_datasets::DatasetSpec;

fn main() {
    for spec in [
        DatasetSpec::yago_like(10_000),
        DatasetSpec::dbpedia_like(10_000),
        DatasetSpec::imdb_like(10_000),
        DatasetSpec::synt(10_000),
    ] {
        let ds = spec.generate();
        let (index, _) = bgi_bench::setup::default_index(&ds, 7);
        let sizes = index.layer_sizes();
        let ratios: Vec<String> = sizes
            .iter()
            .map(|&s| format!("{:.3}", s as f64 / sizes[0] as f64))
            .collect();
        println!(
            "{:14} |G0|={:6} layers={} ratios={:?}",
            ds.name,
            sizes[0],
            index.num_layers(),
            ratios
        );
    }
}
