//! Criterion: r-clique query times with and without BiG-index
//! (the microbenchmark behind Figs. 13–14) plus neighbor-index build.

use bgi_bench::setup::Workbench;
use bgi_datasets::DatasetSpec;
use bgi_search::rclique::NeighborIndex;
use bgi_search::RClique;
use big_index::{boost_dkws, EvalOptions};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_rclique_queries(c: &mut Criterion) {
    let wb = Workbench::prepare(&DatasetSpec::yago_like(4_000), 5, 4);
    let rc = RClique {
        radius: 4,
        max_index_bytes: None,
    };
    let boosted = boost_dkws(&wb.index, rc, EvalOptions::default());

    let mut group = c.benchmark_group("rclique_yago_like");
    group.sample_size(20);
    for q in wb.queries.iter().take(4) {
        let query = q.to_query();
        group.bench_function(format!("{}_baseline", q.id), |b| {
            b.iter(|| boosted.baseline(&query, 10));
        });
        group.bench_function(format!("{}_boosted", q.id), |b| {
            b.iter(|| boosted.query(&query, 10));
        });
    }
    group.finish();
}

fn bench_neighbor_index(c: &mut Criterion) {
    let mut group = c.benchmark_group("neighbor_index_build");
    group.sample_size(10);
    for scale in [1_000usize, 3_000] {
        let ds = DatasetSpec::yago_like(scale).generate();
        group.bench_function(format!("yago-like/{scale}/r4"), |b| {
            b.iter(|| NeighborIndex::build(&ds.graph, 4));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_rclique_queries, bench_neighbor_index);
criterion_main!(benches);
