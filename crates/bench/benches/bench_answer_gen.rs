//! Criterion: answer-graph generation microbenchmarks — Algo. 3
//! (vertex-at-a-time, with and without the specialization-order
//! optimization) versus Algo. 4 (path-based), the mechanisms behind
//! Figs. 17–18.

use bgi_graph::{GraphBuilder, LabelId, VId};
use bgi_search::AnswerGraph;
use big_index::ans_gen::vertex_answer_generation;
use big_index::path_gen::path_answer_generation;
use big_index::spec::SpecializedAnswer;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// A star-shaped generalized answer whose center specializes to `width`
/// universities, each connected to one of `width` states, plus a shared
/// organization — Example 4.2's shape, scaled.
fn scenario(width: usize) -> (bgi_graph::DiGraph, AnswerGraph, SpecializedAnswer) {
    let mut b = GraphBuilder::new();
    let academics = b.add_vertex(LabelId(0));
    let org = b.add_vertex(LabelId(3));
    let mut univs = Vec::new();
    let mut states = Vec::new();
    for i in 0..width {
        let u = b.add_vertex(LabelId(1));
        let s = b.add_vertex(LabelId(2));
        b.add_edge(u, s);
        b.add_edge(u, org);
        if i == 0 {
            b.add_edge(academics, u);
        }
        univs.push(u);
        states.push(s);
    }
    let base = b.build();
    let answer = AnswerGraph::new(
        vec![VId(1000), VId(1001), VId(1002), VId(1003)],
        vec![
            (VId(1000), VId(1001)),
            (VId(1001), VId(1002)),
            (VId(1001), VId(1003)),
        ],
        vec![vec![VId(1002)], vec![VId(1003)]],
        Some(VId(1000)),
        3,
    );
    let spec = SpecializedAnswer {
        candidates: vec![vec![academics], univs, states, vec![org]],
        key_of: vec![None, None, Some(0), Some(1)],
        pruned: 0,
    };
    (base, answer, spec)
}

fn bench_realizers(c: &mut Criterion) {
    let mut group = c.benchmark_group("answer_generation");
    for width in [10usize, 100, 1000] {
        let (base, answer, spec) = scenario(width);
        group.bench_with_input(BenchmarkId::new("algo3_ordered", width), &width, |b, _| {
            b.iter(|| vertex_answer_generation(&base, &answer, &spec, true, usize::MAX));
        });
        group.bench_with_input(
            BenchmarkId::new("algo3_unordered", width),
            &width,
            |b, _| {
                b.iter(|| vertex_answer_generation(&base, &answer, &spec, false, usize::MAX));
            },
        );
        group.bench_with_input(BenchmarkId::new("algo4_paths", width), &width, |b, _| {
            b.iter(|| path_answer_generation(&base, &answer, &spec, usize::MAX));
        });
    }
    group.finish();
}

fn bench_early_termination(c: &mut Criterion) {
    let (base, answer, spec) = scenario(1000);
    let mut group = c.benchmark_group("answer_generation_topk");
    group.bench_function("algo4_all", |b| {
        b.iter(|| path_answer_generation(&base, &answer, &spec, usize::MAX));
    });
    group.bench_function("algo4_top1", |b| {
        b.iter(|| path_answer_generation(&base, &answer, &spec, 1));
    });
    group.finish();
}

criterion_group!(benches, bench_realizers, bench_early_termination);
criterion_main!(benches);
