//! Criterion: maximal bisimulation refinement and summarization cost
//! versus graph size (the index-construction inner loop).

use bgi_bisim::{maximal_bisimulation, summarize, BisimDirection};
use bgi_datasets::DatasetSpec;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_maximal_bisimulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("maximal_bisimulation");
    for scale in [1_000usize, 4_000, 16_000] {
        let ds = DatasetSpec::yago_like(scale).generate();
        group.bench_with_input(BenchmarkId::new("yago-like", scale), &ds, |b, ds| {
            b.iter(|| maximal_bisimulation(&ds.graph, BisimDirection::Forward));
        });
    }
    group.finish();
}

fn bench_summarize(c: &mut Criterion) {
    let mut group = c.benchmark_group("summarize");
    for scale in [1_000usize, 4_000, 16_000] {
        let ds = DatasetSpec::yago_like(scale).generate();
        let part = maximal_bisimulation(&ds.graph, BisimDirection::Forward);
        group.bench_with_input(
            BenchmarkId::new("yago-like", scale),
            &(&ds, &part),
            |b, (ds, part)| b.iter(|| summarize(&ds.graph, part)),
        );
    }
    group.finish();
}

fn bench_directions(c: &mut Criterion) {
    let ds = DatasetSpec::yago_like(4_000).generate();
    let mut group = c.benchmark_group("bisim_direction");
    for (name, dir) in [
        ("forward", BisimDirection::Forward),
        ("backward", BisimDirection::Backward),
        ("both", BisimDirection::Both),
    ] {
        group.bench_function(name, |b| b.iter(|| maximal_bisimulation(&ds.graph, dir)));
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_maximal_bisimulation,
    bench_summarize,
    bench_directions
);
criterion_main!(benches);
