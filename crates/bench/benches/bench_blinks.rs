//! Criterion: BLINKS query times with and without BiG-index
//! (the microbenchmark behind Figs. 10–12).

use bgi_bench::setup::Workbench;
use bgi_datasets::DatasetSpec;
use bgi_search::blinks::{Blinks, BlinksParams};
use big_index::{Boosted, EvalOptions};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_blinks_queries(c: &mut Criterion) {
    let wb = Workbench::prepare(&DatasetSpec::yago_like(8_000), 5, 5);
    let blinks = Blinks::new(BlinksParams {
        block_size: 1000,
        prune_dist: 5,
    });
    let boosted = Boosted::new(&wb.index, blinks, EvalOptions::default());

    let mut group = c.benchmark_group("blinks_yago_like");
    for q in wb.queries.iter().take(4) {
        let query = q.to_query();
        group.bench_function(format!("{}_baseline", q.id), |b| {
            b.iter(|| boosted.baseline(&query, 10));
        });
        group.bench_function(format!("{}_boosted", q.id), |b| {
            b.iter(|| boosted.query(&query, 10));
        });
    }
    group.finish();
}

fn bench_blinks_index_build(c: &mut Criterion) {
    use bgi_search::KeywordSearch;
    let ds = DatasetSpec::yago_like(4_000).generate();
    let blinks = Blinks::new(BlinksParams {
        block_size: 1000,
        prune_dist: 5,
    });
    let mut group = c.benchmark_group("blinks_index_build");
    group.sample_size(10);
    group.bench_function("yago-like/4000", |b| {
        b.iter(|| blinks.build_index(&ds.graph));
    });
    group.finish();
}

criterion_group!(benches, bench_blinks_queries, bench_blinks_index_build);
criterion_main!(benches);
