//! Criterion: BiG-index construction — the default index (one
//! generalization step per layer, Exp-3's setting) and the Algo. 1
//! greedy configuration search.

use bgi_bisim::BisimDirection;
use bgi_datasets::DatasetSpec;
use bgi_graph::sampling::SamplingParams;
use big_index::cost::CostParams;
use big_index::{BiGIndex, BuildParams};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_default_index(c: &mut Criterion) {
    let mut group = c.benchmark_group("default_index_build");
    group.sample_size(10);
    for scale in [1_000usize, 4_000] {
        let ds = DatasetSpec::yago_like(scale).generate();
        group.bench_with_input(BenchmarkId::new("yago-like", scale), &ds, |b, ds| {
            b.iter(|| bgi_bench::setup::default_index(ds, 7));
        });
    }
    group.finish();
}

fn bench_greedy_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("greedy_index_build");
    group.sample_size(10);
    let ds = DatasetSpec::yago_like(2_000).generate();
    let params = BuildParams {
        cost: CostParams::default(),
        sampling: SamplingParams {
            radius: 2,
            num_samples: 100,
            max_ball: 256,
            seed: 1,
        },
        direction: BisimDirection::Forward,
        max_layers: 3,
        min_gain_ratio: 0.98,
        summarizer: big_index::Summarizer::Maximal,
        threads: 1,
    };
    group.bench_function("yago-like/2000", |b| {
        b.iter(|| BiGIndex::build(ds.graph.clone(), ds.ontology.clone(), &params));
    });
    group.finish();
}

criterion_group!(benches, bench_default_index, bench_greedy_build);
criterion_main!(benches);
