//! # bgi-datasets
//!
//! Synthetic datasets reproducing the *shape* of the BiG-index paper's
//! evaluation data (Tab. 2): YAGO3-like, DBpedia-like, and IMDB-like
//! knowledge graphs plus the synt-N family, each paired with an ontology
//! generated to the paper's synthetic spec (average branching ≈ 5,
//! height ≈ 7 for synt; shallower, wider ontologies for the real-data
//! stand-ins).
//!
//! The generators control exactly the two statistics that drive
//! BiG-index's behaviour (see DESIGN.md, "Substitutions"):
//!
//! 1. **type-cluster multiplicity** — how many same-typed vertices share
//!    identical out-neighborhood *types* (popularity-skewed target
//!    choice), which determines how much bisimulation collapses after
//!    generalization; and
//! 2. **per-label support** — a Zipf mix of leaf-specific and mid-level
//!    labels, which determines keyword counts (Tab. 4) and the
//!    distortion/support terms of both cost models.
//!
//! [`queries`] generates the Q1–Q8-style benchmark workload: 2–6
//! keywords that are semantically related (co-occurring within a few
//! hops) with a minimum support, mirroring Sec. 6.1.3.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod kg;
pub mod ontology_gen;
pub mod persist;
pub mod queries;
pub mod specs;
pub mod updates;
pub mod zipf;

pub use kg::Dataset;
pub use queries::{benchmark_queries, BenchQuery};
pub use specs::DatasetSpec;
pub use updates::{update_stream, UpdateMix, UpdateOp};
