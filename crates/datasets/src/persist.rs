//! Dataset persistence in the workspace's plain-text graph format, so
//! generated benchmark inputs can be inspected, diffed, and reloaded
//! without regeneration.
//!
//! A dataset directory contains:
//! - `graph.txt` — the data graph (`v`/`e` records);
//! - `ontology.txt` — the ontology (`t` records);
//! - `meta.txt` — name and level structure.

use crate::kg::Dataset;
use bgi_graph::io::{read_graph, read_ontology, write_graph, write_ontology};
use bgi_graph::{GraphError, LabelId, LabelInterner};
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Writes `name` inside `dir` atomically: content goes to `name.tmp`,
/// is flushed and fsynced, and only then renamed over the final path.
/// A crash mid-write leaves the previous file (or no file) — never a
/// half-written one a later [`load`] would trip over.
fn write_atomic(
    dir: &Path,
    name: &str,
    fill: impl FnOnce(&mut BufWriter<File>) -> Result<(), GraphError>,
) -> Result<(), GraphError> {
    let tmp = dir.join(format!("{name}.tmp"));
    let mut writer = BufWriter::new(File::create(&tmp)?);
    fill(&mut writer)?;
    writer.flush()?;
    writer.get_ref().sync_all()?;
    std::fs::rename(&tmp, dir.join(name))?;
    Ok(())
}

/// Saves `ds` into `dir` (created if missing). Each file is written
/// atomically (tmp + fsync + rename), and the directory itself is
/// fsynced last so the renames are durable as a set.
pub fn save(ds: &Dataset, dir: &Path) -> Result<(), GraphError> {
    std::fs::create_dir_all(dir)?;
    write_atomic(dir, "graph.txt", |w| write_graph(&ds.graph, &ds.labels, w))?;
    write_atomic(dir, "ontology.txt", |w| {
        write_ontology(&ds.ontology, &ds.labels, w)
    })?;
    write_atomic(dir, "meta.txt", |meta| {
        writeln!(meta, "name {}", ds.name)?;
        for (d, level) in ds.levels.iter().enumerate() {
            let names: Vec<&str> = level.iter().map(|&l| ds.labels.name(l)).collect();
            writeln!(meta, "level {} {}", d, names.join(" "))?;
        }
        Ok(())
    })?;
    // Directory fsync makes the three renames durable; on filesystems
    // where opening a directory for sync is unsupported, the rename
    // ordering above is still crash-consistent per file.
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

/// Loads a dataset previously written by [`save`].
pub fn load(dir: &Path) -> Result<Dataset, GraphError> {
    let mut labels = LabelInterner::new();
    // The ontology is read first so label ids match the generation-time
    // interning order (labels are interned by the ontology generator
    // before any vertex labels).
    let ontology = read_ontology(
        BufReader::new(File::open(dir.join("ontology.txt"))?),
        &mut labels,
    )?;
    let graph = read_graph(
        BufReader::new(File::open(dir.join("graph.txt"))?),
        &mut labels,
    )?;
    let meta = BufReader::new(File::open(dir.join("meta.txt"))?);
    let mut name = String::from("unnamed");
    let mut levels: Vec<Vec<LabelId>> = Vec::new();
    for (lineno, line) in meta.lines().enumerate() {
        let line = line?;
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("name") => {
                name = parts.collect::<Vec<_>>().join(" ");
            }
            Some("level") => {
                let _depth: usize =
                    parts
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| GraphError::Parse {
                            line: lineno + 1,
                            message: "expected level depth".into(),
                        })?;
                let level: Result<Vec<LabelId>, GraphError> = parts
                    .map(|n| {
                        labels.get(n).ok_or_else(|| GraphError::Parse {
                            line: lineno + 1,
                            message: format!("unknown label '{n}' in meta"),
                        })
                    })
                    .collect();
                levels.push(level?);
            }
            Some(other) => {
                return Err(GraphError::Parse {
                    line: lineno + 1,
                    message: format!("unknown meta record '{other}'"),
                });
            }
            None => {}
        }
    }
    Ok(Dataset {
        name,
        graph,
        ontology,
        labels,
        levels,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::specs::DatasetSpec;

    #[test]
    fn roundtrip_preserves_everything() {
        let ds = DatasetSpec::yago_like(500).generate();
        let dir = std::env::temp_dir().join("bgi_persist_test_rt");
        save(&ds, &dir).unwrap();
        let loaded = load(&dir).unwrap();
        assert_eq!(loaded.name, ds.name);
        assert_eq!(loaded.graph.num_vertices(), ds.graph.num_vertices());
        assert_eq!(loaded.graph.num_edges(), ds.graph.num_edges());
        assert_eq!(loaded.ontology.num_edges(), ds.ontology.num_edges());
        assert_eq!(loaded.levels.len(), ds.levels.len());
        // Vertex labels survive by *name* (ids may be permuted by
        // interning order).
        for v in ds.graph.vertices().take(50) {
            assert_eq!(
                loaded.labels.name(loaded.graph.label(v)),
                ds.labels.name(ds.graph.label(v))
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn save_over_existing_dataset_is_atomic_per_file() {
        let small = DatasetSpec::yago_like(300).generate();
        let large = DatasetSpec::yago_like(600).generate();
        let dir = std::env::temp_dir().join("bgi_persist_test_overwrite");
        save(&large, &dir).unwrap();
        save(&small, &dir).unwrap();
        // The overwrite fully replaced every file (no stale tail from
        // the larger predecessor) and left no temp droppings behind.
        let loaded = load(&dir).unwrap();
        assert_eq!(loaded.graph.num_vertices(), small.graph.num_vertices());
        assert_eq!(loaded.graph.num_edges(), small.graph.num_edges());
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok().map(|e| e.file_name()))
            .filter(|n| n.to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "stray temp files: {leftovers:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_missing_dir_errors() {
        let err = load(Path::new("/nonexistent/bgi_dataset"));
        assert!(err.is_err());
    }

    #[test]
    fn queries_work_on_reloaded_dataset() {
        use crate::queries::benchmark_queries;
        let ds = DatasetSpec::yago_like(800).generate();
        let dir = std::env::temp_dir().join("bgi_persist_test_q");
        save(&ds, &dir).unwrap();
        let loaded = load(&dir).unwrap();
        let queries = benchmark_queries(&loaded, 3, 5, 1);
        assert!(!queries.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }
}
