//! Zipf-distributed index sampling.
//!
//! Knowledge-graph label frequencies and edge-target popularities are
//! heavy-tailed; a simple cumulative-weight table gives reproducible
//! Zipf draws without external dependencies.

use rand::Rng;

/// A sampler over `0..n` with probability `P(i) ∝ 1 / (i + 1)^s`.
#[derive(Debug, Clone)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Builds the table for `n` items with exponent `s ≥ 0`
    /// (`s = 0` is uniform).
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "need at least one item");
        assert!(s >= 0.0, "exponent must be non-negative");
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for i in 0..n {
            total += 1.0 / ((i + 1) as f64).powf(s);
            cumulative.push(total);
        }
        Zipf { cumulative }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// True if empty (never: construction requires `n > 0`).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Draws one index.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let total = *self.cumulative.last().unwrap();
        let x = rng.gen_range(0.0..total);
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&x).unwrap())
        {
            Ok(i) => i,
            Err(i) => i,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_when_s_zero() {
        let z = Zipf::new(4, 0.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "counts {counts:?}");
        }
    }

    #[test]
    fn skewed_prefers_small_indexes() {
        let z = Zipf::new(100, 1.2);
        let mut rng = StdRng::seed_from_u64(2);
        let mut first_ten = 0usize;
        const N: usize = 20_000;
        for _ in 0..N {
            if z.sample(&mut rng) < 10 {
                first_ten += 1;
            }
        }
        // With s = 1.2 the first 10 of 100 items carry well over half
        // the mass.
        assert!(first_ten > N / 2, "first_ten = {first_ten}");
    }

    #[test]
    fn samples_in_range() {
        let z = Zipf::new(7, 2.0);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 7);
        }
    }

    #[test]
    fn single_item() {
        let z = Zipf::new(1, 1.0);
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(z.sample(&mut rng), 0);
        assert_eq!(z.len(), 1);
    }
}
