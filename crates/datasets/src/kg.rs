//! Knowledge-graph generation.
//!
//! Entities carry labels drawn from an ontology (mostly deep/leaf
//! labels, some mid-level — so keyword counts span the Tab. 4 range),
//! and edges follow a category-level schema with popularity-skewed
//! target choice. High skew means many same-typed entities share their
//! out-neighborhoods exactly, which is what lets bisimulation collapse
//! them once labels are generalized — the paper's Fig. 1 "100 persons"
//! motif. A noise fraction of uniformly random edges individualizes
//! vertices and caps the achievable compression (DBpedia-like graphs
//! compress less than YAGO-like ones, Tab. 3).

use crate::ontology_gen::{generate_ontology, GeneratedOntology};
use crate::zipf::Zipf;
use bgi_graph::{DiGraph, GraphBuilder, LabelId, LabelInterner, Ontology, VId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Low-level generator parameters (see [`crate::specs::DatasetSpec`] for
/// the named dataset presets).
#[derive(Debug, Clone)]
pub struct KgParams {
    /// Dataset display name.
    pub name: String,
    /// Number of vertices `|V|`.
    pub num_vertices: usize,
    /// Average out-degree (`|E| ≈ avg_out_degree · |V|`).
    pub avg_out_degree: f64,
    /// Ontology branching per level.
    pub branching: Vec<usize>,
    /// Ontology branching jitter.
    pub ontology_jitter: usize,
    /// Fraction of vertices labeled with deepest-level (leaf) labels;
    /// the rest get mid-level labels (types with high support).
    pub leaf_label_fraction: f64,
    /// Zipf exponent for label choice within a level.
    pub label_skew: f64,
    /// Zipf exponent for edge-target popularity (higher ⇒ more shared
    /// neighborhoods ⇒ better compression).
    pub target_skew: f64,
    /// Fraction of each category's vertices eligible as schema-edge
    /// targets (the "popular entity" pool; real knowledge graphs route
    /// almost all in-edges to a small hub set). Smaller ⇒ more shared
    /// neighborhoods ⇒ better compression.
    pub hub_fraction: f64,
    /// Fraction of edges rewired to uniform random targets.
    pub noise_fraction: f64,
    /// Number of target categories in each category's schema.
    pub schema_out: usize,
    /// When set, every edge target is drawn from vertices whose id is
    /// within this window of the source — a road-network-like band
    /// graph with strong spatial locality and small separators, the
    /// regime where graph partitioning pays off. Disables popularity
    /// hubs and noise rewiring (both are global by nature).
    pub locality_window: Option<usize>,
    /// RNG seed.
    pub seed: u64,
}

/// A generated dataset: graph + ontology + names + level structure.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Dataset display name (e.g. `yago-like`).
    pub name: String,
    /// The data graph `G⁰`.
    pub graph: DiGraph,
    /// The ontology `G_Ont`.
    pub ontology: Ontology,
    /// Label names.
    pub labels: LabelInterner,
    /// Ontology labels grouped by depth (root = level 0).
    pub levels: Vec<Vec<LabelId>>,
}

impl Dataset {
    /// `|V|`.
    pub fn num_vertices(&self) -> usize {
        self.graph.num_vertices()
    }

    /// `|E|`.
    pub fn num_edges(&self) -> usize {
        self.graph.num_edges()
    }
}

/// Generates a knowledge graph per `params`.
pub fn generate(params: &KgParams) -> Dataset {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let GeneratedOntology {
        ontology,
        labels,
        levels,
    } = generate_ontology(
        &params.branching,
        params.ontology_jitter,
        params.seed ^ 0x5EED,
    );

    let height = levels.len() - 1;
    let categories = &levels[1.min(height)];
    let num_cats = categories.len().max(1);

    // Map every label to its level-1 category index (root maps to 0).
    let mut cat_of_label = vec![0usize; ontology.num_labels()];
    for (ci, &c) in categories.iter().enumerate() {
        cat_of_label[c.index()] = ci;
        let mut stack = vec![c];
        while let Some(l) = stack.pop() {
            for &sub in ontology.direct_subtypes(l) {
                cat_of_label[sub.index()] = ci;
                stack.push(sub);
            }
        }
    }

    // Per-category label pools. Leaves are grouped by their parent so
    // leaf choice is hierarchical (parent by Zipf, then leaf by Zipf
    // within the parent): every parent type then has a *dominant* child
    // carrying roughly half its mass, mirroring real knowledge graphs
    // where one subtype (e.g. "Club" under "Organization") dominates.
    let mut leaf_groups: Vec<Vec<Vec<LabelId>>> = vec![Vec::new(); num_cats];
    let mut mid_pool: Vec<Vec<LabelId>> = vec![Vec::new(); num_cats];
    if height >= 1 {
        for &parent in &levels[height - 1] {
            let c = cat_of_label[parent.index()];
            let children: Vec<LabelId> = ontology.direct_subtypes(parent).to_vec();
            if !children.is_empty() {
                leaf_groups[c].push(children);
            }
        }
    }
    for (d, level) in levels.iter().enumerate().skip(1) {
        if d == height {
            continue;
        }
        for &l in level {
            mid_pool[cat_of_label[l.index()]].push(l);
        }
    }
    for c in 0..num_cats {
        if leaf_groups[c].is_empty() {
            leaf_groups[c] = mid_pool[c].iter().map(|&l| vec![l]).collect();
        }
        if mid_pool[c].is_empty() {
            mid_pool[c] = leaf_groups[c].iter().flatten().copied().collect();
        }
    }

    // Category schema. Categories are ranked: edges only point from a
    // category to strictly higher-ranked ones, and the top third of the
    // ranking are *value* categories with no out-edges (attribute hubs
    // like states or leagues). Bisimulation collapse then propagates up
    // from the value sinks, reproducing the knowledge-graph motif of
    // Fig. 1 (many persons → one university → one state).
    let num_sinks = (num_cats / 3).max(1).min(num_cats.saturating_sub(1)).max(1);
    let first_sink = num_cats - num_sinks;
    let schema: Vec<Vec<usize>> = (0..num_cats)
        .map(|c| {
            if c >= first_sink {
                return Vec::new(); // value category: sink
            }
            let mut targets = Vec::new();
            let mut tries = 0;
            while targets.len() < params.schema_out.min(num_cats - c - 1) && tries < 64 {
                let t = rng.gen_range(c + 1..num_cats);
                if !targets.contains(&t) {
                    targets.push(t);
                }
                tries += 1;
            }
            if targets.is_empty() {
                targets.push(num_cats - 1);
            }
            targets
        })
        .collect();

    // Assign labels.
    let cat_zipf = Zipf::new(num_cats, params.label_skew);
    let mut builder = GraphBuilder::with_capacity(
        params.num_vertices,
        (params.num_vertices as f64 * params.avg_out_degree) as usize,
    );
    let mut vertex_cat = Vec::with_capacity(params.num_vertices);
    let mut by_cat: Vec<Vec<VId>> = vec![Vec::new(); num_cats];
    for _ in 0..params.num_vertices {
        let c = cat_zipf.sample(&mut rng);
        let label = if rng.gen_bool(params.leaf_label_fraction.clamp(0.0, 1.0)) {
            let groups = &leaf_groups[c];
            let gz = Zipf::new(groups.len(), params.label_skew);
            let group = &groups[gz.sample(&mut rng)];
            // Skew 1.2 within the group makes the head child dominant
            // (~50% of the parent's mass for 3-4 children).
            let lz = Zipf::new(group.len(), 1.2);
            group[lz.sample(&mut rng)]
        } else {
            let pool = &mid_pool[c];
            let z = Zipf::new(pool.len(), params.label_skew);
            pool[z.sample(&mut rng)]
        };
        let v = builder.add_vertex(label);
        vertex_cat.push(c);
        by_cat[c].push(v);
    }

    // Popularity samplers per category, restricted to each category's
    // hub pool.
    let pop: Vec<Option<Zipf>> = by_cat
        .iter()
        .map(|vs| {
            if vs.is_empty() {
                None
            } else {
                let hubs =
                    ((vs.len() as f64 * params.hub_fraction).ceil() as usize).clamp(1, vs.len());
                Some(Zipf::new(hubs, params.target_skew))
            }
        })
        .collect();

    // Edges. Only non-sink vertices emit edges; their degree is scaled
    // up so the overall |E|/|V| still matches `avg_out_degree`.
    let n = params.num_vertices;
    let non_sink: usize = (0..n).filter(|&v| vertex_cat[v] < first_sink).count();
    let per_source = if non_sink == 0 {
        0.0
    } else {
        params.avg_out_degree * n as f64 / non_sink as f64
    };
    for v in 0..n {
        let c = vertex_cat[v];
        if c >= first_sink {
            continue;
        }
        // Degree: floor plus a Bernoulli for the fraction.
        let base = per_source.floor() as usize;
        let extra = rng.gen_bool(per_source.fract());
        let degree = base + usize::from(extra);
        // Track chosen targets: small hub pools make repeat draws likely,
        // and the builder would dedup them, deflating |E| below target.
        let mut chosen: Vec<VId> = Vec::with_capacity(degree);
        let mut draws = 0;
        while chosen.len() < degree && draws < degree * 8 {
            draws += 1;
            let target = if let Some(w) = params.locality_window {
                // Band-graph mode: a uniform target of the schema's
                // category within the id window (the per-category lists
                // are in ascending id order, so the window is a slice).
                let tc = schema[c][rng.gen_range(0..schema[c].len())];
                let pool = &by_cat[tc];
                if pool.is_empty() {
                    VId(rng.gen_range(0..n as u32))
                } else {
                    let lo = pool.partition_point(|t| (t.0 as i64) < v as i64 - w as i64);
                    let hi = pool.partition_point(|t| (t.0 as i64) <= v as i64 + w as i64);
                    if lo < hi {
                        pool[rng.gen_range(lo..hi)]
                    } else {
                        // No in-window vertex of that category: take the
                        // nearest one by id, keeping locality approximate.
                        pool[lo.min(pool.len() - 1)]
                    }
                }
            } else if rng.gen_bool(params.noise_fraction.clamp(0.0, 1.0)) {
                // Noise: a uniform vertex from any higher-ranked
                // category (keeps the rank DAG but breaks neighborhood
                // sharing, individualizing the source).
                let mut t = VId(rng.gen_range(0..n as u32));
                let mut tries = 0;
                while vertex_cat[t.index()] <= c && tries < 16 {
                    t = VId(rng.gen_range(0..n as u32));
                    tries += 1;
                }
                t
            } else {
                let tc = schema[c][rng.gen_range(0..schema[c].len())];
                match &pop[tc] {
                    Some(z) => by_cat[tc][z.sample(&mut rng)],
                    None => VId(rng.gen_range(0..n as u32)),
                }
            };
            if target != VId(v as u32) && !chosen.contains(&target) {
                chosen.push(target);
                builder.add_edge(VId(v as u32), target);
            }
        }
    }

    Dataset {
        name: params.name.clone(),
        graph: builder.build(),
        ontology,
        labels,
        levels,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_params() -> KgParams {
        KgParams {
            name: "test".into(),
            num_vertices: 2000,
            avg_out_degree: 2.0,
            branching: vec![6, 4, 4],
            ontology_jitter: 0,
            leaf_label_fraction: 0.7,
            label_skew: 0.8,
            target_skew: 1.2,
            hub_fraction: 0.02,
            noise_fraction: 0.05,
            schema_out: 3,
            locality_window: None,
            seed: 42,
        }
    }

    #[test]
    fn sizes_match_params() {
        let ds = generate(&small_params());
        assert_eq!(ds.num_vertices(), 2000);
        // The per-source degree is `floor(target) + Bernoulli(fract)`,
        // so |E| matches `avg_out_degree` only in expectation: allow
        // fluctuation above the target, not just dedup-losses below it.
        let avg = ds.num_edges() as f64 / 2000.0;
        assert!((1.5..=2.1).contains(&avg), "avg out-degree {avg}");
        assert!(ds.graph.check_consistency());
    }

    #[test]
    fn labels_come_from_ontology() {
        let ds = generate(&small_params());
        for v in ds.graph.vertices() {
            let l = ds.graph.label(v);
            assert!(l.index() < ds.ontology.num_labels());
            // Never the root.
            assert!(!ds.ontology.is_root(l), "vertex labeled with root type");
        }
    }

    #[test]
    fn deterministic() {
        let a = generate(&small_params());
        let b = generate(&small_params());
        assert_eq!(a.graph, b.graph);
    }

    #[test]
    fn different_seeds_differ() {
        let mut p = small_params();
        let a = generate(&p);
        p.seed = 43;
        let b = generate(&p);
        assert_ne!(a.graph, b.graph);
    }

    #[test]
    fn label_distribution_is_skewed() {
        let ds = generate(&small_params());
        let counts = ds.graph.label_counts();
        let mut sorted: Vec<u32> = counts.iter().copied().filter(|&c| c > 0).collect();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        // The most common label should be much more frequent than median.
        let median = sorted[sorted.len() / 2];
        assert!(sorted[0] as f64 >= 4.0 * median.max(1) as f64);
    }

    #[test]
    fn locality_window_bounds_edge_spans() {
        let w = 16usize;
        let mut params = small_params();
        params.locality_window = Some(w);
        let ds = generate(&params);
        let total = ds.graph.edges().count();
        assert!(total > 0);
        // The window draw is exact; only the empty-/dry-pool fallbacks
        // (nearest id in category, or uniform when a category has no
        // vertices yet) can exceed it, and those must stay rare.
        let long = ds
            .graph
            .edges()
            .filter(|&(u, v)| (u.0 as i64 - v.0 as i64).unsigned_abs() as usize > w)
            .count();
        assert!(
            (long as f64) < 0.05 * total as f64,
            "{long}/{total} edges exceed the ±{w} window"
        );
    }

    #[test]
    fn generalization_enables_collapse() {
        // The headline shape requirement: bisimulation after full
        // generalization compresses much better than without.
        use bgi_bisim::{maximal_bisimulation, BisimDirection};
        let ds = generate(&small_params());
        let raw = maximal_bisimulation(&ds.graph, BisimDirection::Forward);
        // Generalize every label to its level-1 category.
        let mut map: Vec<LabelId> = (0..ds.ontology.num_labels() as u32).map(LabelId).collect();
        // Shallow levels first so deeper labels chain to the category.
        for level in ds.levels.iter().skip(2) {
            for &l in level {
                let parent = ds.ontology.direct_supertypes(l)[0];
                map[l.index()] = map[parent.index()];
            }
        }
        let gen = ds.graph.relabel(&map);
        let collapsed = maximal_bisimulation(&gen, BisimDirection::Forward);
        assert!(
            (collapsed.num_blocks() as f64) < 0.8 * raw.num_blocks() as f64,
            "raw {} vs generalized {}",
            raw.num_blocks(),
            collapsed.num_blocks()
        );
    }
}
