//! Benchmark query generation (Sec. 6.1.3 / Tab. 4).
//!
//! The paper selects 2–6 keywords "from the ontology graph which had
//! semantic relationships" with counts above a threshold. We reproduce
//! that by sampling a seed vertex, collecting the labels occurring in
//! its forward r-hop ball (so the keywords demonstrably co-occur and
//! answers exist), and keeping frequent, distinct labels.

use crate::kg::Dataset;
use bgi_graph::traversal::r_hop_ball;
use bgi_graph::{LabelId, VId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rustc_hash::FxHashMap;

/// One benchmark query with its per-keyword counts (Tab. 4's
/// "Counts in the data graph" column).
#[derive(Debug, Clone)]
pub struct BenchQuery {
    /// Query id (`Q1`, `Q2`, …).
    pub id: String,
    /// Keywords as labels.
    pub keywords: Vec<LabelId>,
    /// The distance bound (`d_max = 5` in the Blinks experiments).
    pub dmax: u32,
    /// Number of occurrences of each keyword in the data graph.
    pub counts: Vec<u32>,
}

impl BenchQuery {
    /// Converts into a search query.
    pub fn to_query(&self) -> bgi_search::KeywordQuery {
        bgi_search::KeywordQuery::new(self.keywords.clone(), self.dmax)
    }
}

/// Generates one query of `size` keywords whose labels co-occur in a
/// radius-`dmax` ball and each occur at least `min_count` times.
/// Returns `None` if no qualifying seed is found within the attempt
/// budget.
pub fn related_query(
    ds: &Dataset,
    size: usize,
    dmax: u32,
    min_count: u32,
    rng: &mut StdRng,
) -> Option<Vec<LabelId>> {
    related_query_with(ds, size, dmax, min_count, true, rng)
        .or_else(|| related_query_with(ds, size, dmax, min_count, false, rng))
}

/// [`related_query`] with the dominance filter made optional; large
/// queries may not find enough dominant co-occurring keywords and fall
/// back to unrestricted ones.
pub fn related_query_with(
    ds: &Dataset,
    size: usize,
    dmax: u32,
    min_count: u32,
    require_dominant: bool,
    rng: &mut StdRng,
) -> Option<Vec<LabelId>> {
    let counts = ds.graph.label_counts();
    let n = ds.graph.num_vertices();
    if n == 0 {
        return None;
    }
    // A keyword is *dominant* when it carries at least 40% of its
    // parent type's data mass, so generalizing it multiplies its match
    // count by at most ~2.5. The paper's typed keywords (e.g. "Club",
    // count 8336) have this property against YAGO's enormous ontology;
    // without it a query would always be cheapest on the data graph.
    let dominant = |l: LabelId| -> bool {
        match ds.ontology.direct_supertypes(l).first() {
            None => true,
            Some(&parent) => {
                let mass: u64 = ds
                    .ontology
                    .direct_subtypes(parent)
                    .iter()
                    .map(|&s| counts.get(s.index()).copied().unwrap_or(0) as u64)
                    .sum::<u64>()
                    + counts.get(parent.index()).copied().unwrap_or(0) as u64;
                5 * counts[l.index()] as u64 >= 2 * mass
            }
        }
    };
    // The level-1 category of a label, for keyword diversity: keywords
    // from distinct categories never merge below the root.
    let category = |l: LabelId| -> LabelId {
        let mut cur = l;
        loop {
            match ds.ontology.direct_supertypes(cur).first() {
                Some(&p) if !ds.ontology.is_root(p) => cur = p,
                _ => return cur,
            }
        }
    };
    for _ in 0..200 {
        let seed = VId(rng.gen_range(0..n as u32));
        let ball = r_hop_ball(&ds.graph, seed, dmax);
        // Frequency of labels inside the ball.
        let mut in_ball: FxHashMap<LabelId, u32> = FxHashMap::default();
        for &v in &ball {
            *in_ball.entry(ds.graph.label(v)).or_insert(0) += 1;
        }
        let mut qualified: Vec<LabelId> = in_ball
            .keys()
            .copied()
            .filter(|&l| counts[l.index()] >= min_count && (!require_dominant || dominant(l)))
            .collect();
        if qualified.len() < size {
            continue;
        }
        // Deterministic pick: *rarest* in the ball first. Globally
        // frequent labels that rarely co-occur make the hard queries of
        // the paper's workload — plenty of keyword matches, scarce
        // common roots — whereas ball-frequent labels would make every
        // query trivially answerable at distance ≤ 1. Keywords come from
        // distinct categories where possible.
        qualified.sort_by_key(|l| (in_ball[l], *l));
        let mut picked: Vec<LabelId> = Vec::with_capacity(size);
        let mut cats: Vec<LabelId> = Vec::new();
        for &l in &qualified {
            let c = category(l);
            if !cats.contains(&c) {
                cats.push(c);
                picked.push(l);
                if picked.len() == size {
                    break;
                }
            }
        }
        // Backfill from remaining qualified labels if category diversity
        // fell short.
        if picked.len() < size {
            for &l in &qualified {
                if !picked.contains(&l) {
                    picked.push(l);
                    if picked.len() == size {
                        break;
                    }
                }
            }
        }
        if picked.len() < size {
            continue;
        }
        return Some(picked);
    }
    None
}

/// Generates the Tab. 4-style workload: queries `Q1..=Q8` with keyword
/// counts `[2, 2, 3, 3, 3, 4, 5, 6]`, all keywords occurring at least
/// `min_count` times.
pub fn benchmark_queries(ds: &Dataset, dmax: u32, min_count: u32, seed: u64) -> Vec<BenchQuery> {
    let sizes = [2usize, 2, 3, 3, 3, 4, 5, 6];
    let mut rng = StdRng::seed_from_u64(seed);
    let counts = ds.graph.label_counts();
    let mut out = Vec::new();
    for (i, &size) in sizes.iter().enumerate() {
        // Prefer dominant (low-distortion) keywords at any count
        // threshold; relax dominance only when no dominant combination
        // exists at all. Degrade the count threshold as the dataset
        // shrinks.
        let mut keywords = Vec::new();
        'outer: for require_dominant in [true, false] {
            let mut threshold = min_count;
            loop {
                if let Some(k) =
                    related_query_with(ds, size, dmax, threshold, require_dominant, &mut rng)
                {
                    keywords = k;
                    break 'outer;
                }
                if threshold <= 1 {
                    break;
                }
                threshold /= 2;
            }
        }
        if keywords.is_empty() {
            continue;
        }
        let kw_counts = keywords.iter().map(|l| counts[l.index()]).collect();
        out.push(BenchQuery {
            id: format!("Q{}", i + 1),
            keywords,
            dmax,
            counts: kw_counts,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::specs::DatasetSpec;

    fn dataset() -> Dataset {
        DatasetSpec::yago_like(5000).generate()
    }

    #[test]
    fn workload_has_expected_shape() {
        let ds = dataset();
        let queries = benchmark_queries(&ds, 5, 50, 1);
        assert!(queries.len() >= 6, "got {} queries", queries.len());
        for q in &queries {
            assert!(q.keywords.len() >= 2 && q.keywords.len() <= 6);
            assert_eq!(q.keywords.len(), q.counts.len());
            // Distinct keywords.
            let mut k = q.keywords.clone();
            k.sort_unstable();
            k.dedup();
            assert_eq!(k.len(), q.keywords.len());
        }
    }

    #[test]
    fn counts_match_graph() {
        let ds = dataset();
        let queries = benchmark_queries(&ds, 5, 50, 2);
        let counts = ds.graph.label_counts();
        for q in &queries {
            for (l, &c) in q.keywords.iter().zip(&q.counts) {
                assert_eq!(counts[l.index()], c);
                assert!(c >= 1);
            }
        }
    }

    #[test]
    fn queries_have_answers() {
        use bgi_search::{Banks, KeywordSearch};
        let ds = dataset();
        let queries = benchmark_queries(&ds, 4, 50, 3);
        let mut with_answers = 0;
        for q in queries.iter().take(4) {
            let answers = Banks.search_fresh(&ds.graph, &q.to_query(), 1);
            if !answers.is_empty() {
                with_answers += 1;
            }
        }
        // Keywords co-occur in a forward ball, so a common "root" exists
        // for most queries (the ball's seed reaches all of them).
        assert!(
            with_answers >= 2,
            "only {with_answers} of 4 queries had answers"
        );
    }

    #[test]
    fn deterministic_workload() {
        let ds = dataset();
        let a = benchmark_queries(&ds, 5, 50, 9);
        let b = benchmark_queries(&ds, 5, 50, 9);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.keywords, y.keywords);
        }
    }

    #[test]
    fn empty_dataset_yields_no_queries() {
        let spec = DatasetSpec::yago_like(0);
        let ds = spec.generate();
        let queries = benchmark_queries(&ds, 5, 50, 1);
        assert!(queries.is_empty());
    }
}
