//! Synthetic ontology generation.
//!
//! Ontologies are balanced-ish trees described by per-level branching
//! factors: `[8, 6, 5]` means a root with 8 categories, each with 6
//! subcategories, each with 5 leaves — height 3. The paper's synthetic
//! ontologies use an average degree of 5 and a height of 7, "consistent
//! with the heights and average degrees of the real ontology graphs"
//! (Sec. 6.1.2).

use bgi_graph::{LabelId, LabelInterner, Ontology, OntologyBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A generated ontology with its label names and level structure.
#[derive(Debug, Clone)]
pub struct GeneratedOntology {
    /// The ontology DAG.
    pub ontology: Ontology,
    /// Names for every label (`T0`, `T0.3`, `T0.3.1`, …).
    pub labels: LabelInterner,
    /// Labels grouped by depth: `levels[0]` = the root, `levels[d]` =
    /// labels at depth `d`.
    pub levels: Vec<Vec<LabelId>>,
}

impl GeneratedOntology {
    /// The deepest level's labels (the most specific types).
    pub fn leaves(&self) -> &[LabelId] {
        self.levels.last().expect("at least the root level")
    }

    /// Labels at depth `d` (root = 0).
    pub fn level(&self, d: usize) -> &[LabelId] {
        &self.levels[d]
    }

    /// Ontology height.
    pub fn height(&self) -> usize {
        self.levels.len() - 1
    }
}

/// Generates a tree ontology with the given per-level branching factors;
/// `jitter` randomizes each node's child count by ±jitter (so "average
/// degree 5" ontologies aren't perfectly regular).
pub fn generate_ontology(branching: &[usize], jitter: usize, seed: u64) -> GeneratedOntology {
    assert!(!branching.is_empty(), "need at least one level");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut labels = LabelInterner::new();
    let root = labels.intern("Thing");
    let mut levels: Vec<Vec<LabelId>> = vec![vec![root]];
    let mut edges: Vec<(LabelId, LabelId)> = Vec::new();

    for (depth, &b) in branching.iter().enumerate() {
        let mut next = Vec::new();
        let parents = levels[depth].clone();
        for parent in parents {
            let b = if jitter > 0 && b > jitter {
                rng.gen_range(b - jitter..=b + jitter)
            } else {
                b
            };
            for c in 0..b {
                let name = format!("{}.{}", labels.name(parent), c);
                let child = labels.intern(&name);
                edges.push((parent, child));
                next.push(child);
            }
        }
        levels.push(next);
    }

    let mut builder = OntologyBuilder::new(labels.len());
    for (sup, sub) in edges {
        builder.add_subtype(sup, sub);
    }
    let ontology = builder.build().expect("generated tree is acyclic");
    GeneratedOntology {
        ontology,
        labels,
        levels,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regular_tree_counts() {
        let g = generate_ontology(&[3, 2], 0, 1);
        assert_eq!(g.level(0).len(), 1);
        assert_eq!(g.level(1).len(), 3);
        assert_eq!(g.level(2).len(), 6);
        assert_eq!(g.leaves().len(), 6);
        assert_eq!(g.height(), 2);
        assert_eq!(g.ontology.num_labels(), 10);
    }

    #[test]
    fn depths_match_levels() {
        let g = generate_ontology(&[4, 3, 2], 0, 2);
        for (d, level) in g.levels.iter().enumerate() {
            for &l in level {
                assert_eq!(g.ontology.depth(l) as usize, d);
            }
        }
    }

    #[test]
    fn names_are_hierarchical() {
        let g = generate_ontology(&[2], 0, 3);
        assert_eq!(g.labels.name(g.level(0)[0]), "Thing");
        assert!(g.labels.name(g.level(1)[0]).starts_with("Thing."));
    }

    #[test]
    fn jitter_varies_branching_but_stays_tree() {
        let g = generate_ontology(&[5, 5], 2, 7);
        // Every non-root label has exactly one supertype.
        for d in 1..=g.height() {
            for &l in g.level(d) {
                assert_eq!(g.ontology.direct_supertypes(l).len(), 1);
            }
        }
        let n1 = g.level(1).len();
        assert!((3..=7).contains(&n1), "level 1 size {n1}");
    }

    #[test]
    fn deterministic() {
        let a = generate_ontology(&[5, 4, 3], 1, 9);
        let b = generate_ontology(&[5, 4, 3], 1, 9);
        assert_eq!(a.ontology.num_labels(), b.ontology.num_labels());
        for d in 0..=a.height() {
            assert_eq!(a.level(d), b.level(d));
        }
    }

    #[test]
    fn paper_synthetic_shape() {
        // Height 7, average degree 5: levels [5; 7] would give 5^7 leaves
        // (~78k); a trimmed version keeps the height with fewer labels.
        let g = generate_ontology(&[5, 5, 4, 3, 2, 2, 2], 0, 11);
        assert_eq!(g.height(), 7);
        assert!(g.ontology.num_labels() > 1000);
    }
}
