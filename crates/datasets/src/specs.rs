//! Named dataset presets mirroring Tab. 2's datasets.
//!
//! Each preset fixes the generator knobs so the resulting graph has the
//! same *shape* as its namesake: edge density (`|E|/|V|`), ontology
//! proportions, and — via target skew and noise — the relative layer-1
//! compression ordering of Tab. 3 (YAGO3 27.9 % < IMDB 36.7 % <
//! DBpedia 60.5 % < synt ≥ 75 %). `scale` is the vertex count; the
//! paper's full sizes (2.6M–8M) are reachable but the default bench
//! scale keeps laptop runtimes sensible.

use crate::kg::{generate, Dataset, KgParams};

/// A named dataset specification.
#[derive(Debug, Clone)]
pub struct DatasetSpec {
    params: KgParams,
}

impl DatasetSpec {
    /// YAGO3 stand-in: density 2.0, strongly shared neighborhoods
    /// (best compression of the real datasets in Tab. 3).
    pub fn yago_like(scale: usize) -> Self {
        DatasetSpec {
            params: KgParams {
                name: "yago-like".into(),
                num_vertices: scale,
                avg_out_degree: 2.0,
                branching: vec![8, 5, 4, 3],
                ontology_jitter: 1,
                leaf_label_fraction: 0.6,
                label_skew: 0.9,
                target_skew: 1.6,
                hub_fraction: 0.004,
                noise_fraction: 0.01,
                schema_out: 2,
                locality_window: None,
                seed: 0xA601,
            },
        }
    }

    /// DBpedia stand-in: density 2.7, noisier edges (worst real-data
    /// compression in Tab. 3).
    pub fn dbpedia_like(scale: usize) -> Self {
        DatasetSpec {
            params: KgParams {
                name: "dbpedia-like".into(),
                num_vertices: scale,
                avg_out_degree: 2.7,
                branching: vec![10, 6, 4, 3],
                ontology_jitter: 1,
                leaf_label_fraction: 0.8,
                label_skew: 0.7,
                target_skew: 1.3,
                hub_fraction: 0.003,
                noise_fraction: 0.10,
                schema_out: 3,
                locality_window: None,
                seed: 0xDB9E,
            },
        }
    }

    /// IMDB stand-in: density 3.6, moderate sharing.
    pub fn imdb_like(scale: usize) -> Self {
        DatasetSpec {
            params: KgParams {
                name: "imdb-like".into(),
                num_vertices: scale,
                avg_out_degree: 3.6,
                branching: vec![6, 5, 4],
                ontology_jitter: 1,
                leaf_label_fraction: 0.65,
                label_skew: 0.9,
                target_skew: 1.4,
                hub_fraction: 0.003,
                noise_fraction: 0.03,
                schema_out: 3,
                locality_window: None,
                seed: 0x1DB0,
            },
        }
    }

    /// synt-N stand-in: density 3.0, small ontology (5000 labels in the
    /// paper; scaled here), height 7, average branching 5, weak
    /// compression like Tab. 3's synthetic rows.
    pub fn synt(scale: usize) -> Self {
        DatasetSpec {
            params: KgParams {
                name: format!("synt-{scale}"),
                num_vertices: scale,
                avg_out_degree: 3.0,
                branching: vec![5, 5, 4, 3, 2, 2, 2],
                ontology_jitter: 0,
                leaf_label_fraction: 0.9,
                label_skew: 0.5,
                target_skew: 0.7,
                hub_fraction: 0.006,
                noise_fraction: 0.10,
                schema_out: 4,
                locality_window: None,
                seed: 0x5717,
            },
        }
    }

    /// Road-network stand-in: a band graph whose edges stay within a
    /// small id window, so it has strong spatial locality and small
    /// separators — the opposite of the hub-centric knowledge-graph
    /// presets, whose 2-hop balls cover most of the graph. This is the
    /// regime where partitioned serving (`crates/shard`) pays off:
    /// shard halos stay thin instead of swallowing the graph.
    pub fn road_like(scale: usize) -> Self {
        DatasetSpec {
            params: KgParams {
                name: "road-like".into(),
                num_vertices: scale,
                avg_out_degree: 2.5,
                branching: vec![8, 5, 4],
                ontology_jitter: 1,
                leaf_label_fraction: 0.7,
                label_skew: 0.8,
                target_skew: 0.8,
                hub_fraction: 1.0, // unused: the window disables hubs
                noise_fraction: 0.0,
                schema_out: 3,
                locality_window: Some(16),
                seed: 0x40AD,
            },
        }
    }

    /// Overrides the RNG seed (for multi-trial experiments).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.params.seed = seed;
        self
    }

    /// The underlying generator parameters.
    pub fn params(&self) -> &KgParams {
        &self.params
    }

    /// The dataset name.
    pub fn name(&self) -> &str {
        &self.params.name
    }

    /// Generates the dataset.
    pub fn generate(&self) -> Dataset {
        generate(&self.params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgi_bisim::{maximal_bisimulation, summarize, BisimDirection};
    use bgi_graph::LabelId;

    fn layer1_ratio(ds: &Dataset) -> f64 {
        // Generalize leaves one level up, then bisimulate — the "default
        // index" first layer.
        let mut map: Vec<LabelId> = (0..ds.ontology.num_labels() as u32).map(LabelId).collect();
        if let Some(leaves) = ds.levels.last() {
            for &l in leaves {
                map[l.index()] = ds.ontology.direct_supertypes(l)[0];
            }
        }
        let gen = ds.graph.relabel(&map);
        let part = maximal_bisimulation(&gen, BisimDirection::Forward);
        let s = summarize(&gen, &part);
        s.graph.size() as f64 / ds.graph.size() as f64
    }

    #[test]
    fn densities_match_tab2() {
        let checks = [
            (DatasetSpec::yago_like(5000), 2.0),
            (DatasetSpec::dbpedia_like(5000), 2.7),
            (DatasetSpec::imdb_like(5000), 3.6),
            (DatasetSpec::synt(5000), 3.0),
        ];
        for (spec, want) in checks {
            let ds = spec.generate();
            let got = ds.num_edges() as f64 / ds.num_vertices() as f64;
            // Dedup of parallel edges and retry exhaustion allow a
            // small deviation either way.
            assert!(
                got > want * 0.75 && got <= want * 1.05,
                "{}: density {got} (want ≈ {want})",
                ds.name
            );
        }
    }

    #[test]
    fn compression_ordering_matches_tab3() {
        let yago = layer1_ratio(&DatasetSpec::yago_like(8000).generate());
        let dbpedia = layer1_ratio(&DatasetSpec::dbpedia_like(8000).generate());
        let synt = layer1_ratio(&DatasetSpec::synt(8000).generate());
        assert!(
            yago < dbpedia && dbpedia <= synt,
            "yago {yago:.3} dbpedia {dbpedia:.3} synt {synt:.3}"
        );
        assert!(yago < 0.7, "yago-like should compress well, got {yago:.3}");
    }

    #[test]
    fn names() {
        assert_eq!(DatasetSpec::yago_like(10).name(), "yago-like");
        assert_eq!(DatasetSpec::synt(1000).name(), "synt-1000");
        assert_eq!(DatasetSpec::road_like(10).name(), "road-like");
    }

    #[test]
    fn road_like_has_strong_locality() {
        let ds = DatasetSpec::road_like(5000).generate();
        let density = ds.num_edges() as f64 / ds.num_vertices() as f64;
        assert!(density > 1.5 && density < 3.0, "density {density}");
        // Band structure: the mean undirected edge span stays within a
        // few windows, where the hub presets average ~n/3.
        let (mut sum, mut cnt) = (0u64, 0u64);
        for (u, v) in ds.graph.edges() {
            sum += (u.0 as i64 - v.0 as i64).unsigned_abs();
            cnt += 1;
        }
        let mean = sum as f64 / cnt as f64;
        assert!(mean < 64.0, "mean edge span {mean} — locality lost");
    }

    #[test]
    fn with_seed_changes_graph() {
        let a = DatasetSpec::yago_like(1000).generate();
        let b = DatasetSpec::yago_like(1000).with_seed(7).generate();
        assert_ne!(a.graph, b.graph);
    }
}
