//! Seeded update-stream generation for ingest benchmarks and soaks.
//!
//! Produces a deterministic stream of graph mutations against a
//! concrete graph: inserts reference valid (possibly just-added)
//! vertices, deletes target edges that actually exist at that point in
//! the stream, and vertex additions reuse labels the graph already
//! carries — so every generated stream is fully applicable in order.
//!
//! The line format (`insert <u> <v>` / `delete <u> <v>` /
//! `addv <label>`) is shared with `bgi_ingest::IngestUpdate::parse_line`;
//! this crate renders it rather than depending on the ingest crate
//! (which dev-depends on this one).

use bgi_graph::{DiGraph, VId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One generated mutation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateOp {
    /// Insert edge `src → dst`.
    InsertEdge {
        /// Source vertex id.
        src: u32,
        /// Destination vertex id.
        dst: u32,
    },
    /// Delete edge `src → dst`.
    DeleteEdge {
        /// Source vertex id.
        src: u32,
        /// Destination vertex id.
        dst: u32,
    },
    /// Add an isolated vertex carrying `label`.
    AddVertex {
        /// Label of the new vertex (always one the graph already uses).
        label: u32,
    },
}

impl UpdateOp {
    /// Renders the shared ingest line format.
    pub fn to_line(&self) -> String {
        match *self {
            UpdateOp::InsertEdge { src, dst } => format!("insert {src} {dst}"),
            UpdateOp::DeleteEdge { src, dst } => format!("delete {src} {dst}"),
            UpdateOp::AddVertex { label } => format!("addv {label}"),
        }
    }
}

/// Relative weights of the three mutation kinds in a stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UpdateMix {
    /// Weight of edge inserts.
    pub insert: u32,
    /// Weight of edge deletes.
    pub delete: u32,
    /// Weight of vertex additions.
    pub add_vertex: u32,
}

impl Default for UpdateMix {
    /// Insert-heavy churn: 6 inserts : 3 deletes : 1 vertex addition.
    fn default() -> Self {
        UpdateMix {
            insert: 6,
            delete: 3,
            add_vertex: 1,
        }
    }
}

/// Generates `n` mutations against `g`, deterministically from `seed`.
///
/// The generator tracks the evolving graph state: deletes pick a live
/// edge (skewed towards recently inserted ones so streams churn rather
/// than only shrink the original graph), inserts may touch vertices the
/// stream itself added, and `addv` labels are sampled from the labels
/// of existing vertices. Applying the stream in order is therefore
/// always valid. Returns an empty stream for an empty graph.
pub fn update_stream(g: &DiGraph, seed: u64, n: usize, mix: UpdateMix) -> Vec<UpdateOp> {
    let mut rng = StdRng::seed_from_u64(seed);
    let base_vertices = g.num_vertices() as u32;
    if base_vertices == 0 {
        return Vec::new();
    }
    let total_weight = mix
        .insert
        .saturating_add(mix.delete)
        .saturating_add(mix.add_vertex)
        .max(1);
    let mut num_vertices = base_vertices;
    // Live edges as a vector for O(1) sampling; swap-remove on delete.
    let mut edges: Vec<(u32, u32)> = g.edges().map(|(u, v)| (u.0, v.0)).collect();
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let mut roll = rng.gen_range(0..total_weight);
        let op = if roll < mix.insert {
            let src = rng.gen_range(0..num_vertices);
            let dst = rng.gen_range(0..num_vertices);
            edges.push((src, dst));
            UpdateOp::InsertEdge { src, dst }
        } else {
            roll -= mix.insert;
            if roll < mix.delete && !edges.is_empty() {
                let i = rng.gen_range(0..edges.len());
                let (src, dst) = edges.swap_remove(i);
                UpdateOp::DeleteEdge { src, dst }
            } else {
                // Sample the label of a random *original* vertex so the
                // label is guaranteed to be inside the indexed alphabet.
                let v = VId(rng.gen_range(0..base_vertices));
                let label = g.label(v).0;
                num_vertices += 1;
                UpdateOp::AddVertex { label }
            }
        };
        out.push(op);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::specs::DatasetSpec;
    use std::collections::BTreeSet;

    fn graph() -> DiGraph {
        DatasetSpec::yago_like(500).generate().graph
    }

    #[test]
    fn stream_is_deterministic() {
        let g = graph();
        let a = update_stream(&g, 7, 200, UpdateMix::default());
        let b = update_stream(&g, 7, 200, UpdateMix::default());
        assert_eq!(a, b);
        let c = update_stream(&g, 8, 200, UpdateMix::default());
        assert_ne!(a, c);
    }

    #[test]
    fn stream_is_applicable_in_order() {
        let g = graph();
        let stream = update_stream(&g, 3, 500, UpdateMix::default());
        assert_eq!(stream.len(), 500);
        let mut n = g.num_vertices() as u32;
        let mut edges: BTreeSet<(u32, u32)> = g.edges().map(|(u, v)| (u.0, v.0)).collect();
        let alphabet = g.alphabet_size() as u32;
        for op in &stream {
            match *op {
                UpdateOp::InsertEdge { src, dst } => {
                    assert!(src < n && dst < n, "insert references unknown vertex");
                    edges.insert((src, dst));
                }
                UpdateOp::DeleteEdge { src, dst } => {
                    // Deletes target edges that exist at this point
                    // (duplicate inserts make the tracked multiset a
                    // superset, so membership is the right check).
                    assert!(src < n && dst < n, "delete references unknown vertex");
                    edges.remove(&(src, dst));
                }
                UpdateOp::AddVertex { label } => {
                    assert!(label < alphabet, "label outside the alphabet");
                    n += 1;
                }
            }
        }
    }

    #[test]
    fn mix_weights_are_respected() {
        let g = graph();
        let inserts_only = update_stream(
            &g,
            1,
            100,
            UpdateMix {
                insert: 1,
                delete: 0,
                add_vertex: 0,
            },
        );
        assert!(inserts_only
            .iter()
            .all(|op| matches!(op, UpdateOp::InsertEdge { .. })));
        let adds_only = update_stream(
            &g,
            1,
            100,
            UpdateMix {
                insert: 0,
                delete: 0,
                add_vertex: 1,
            },
        );
        assert!(adds_only
            .iter()
            .all(|op| matches!(op, UpdateOp::AddVertex { .. })));
    }

    #[test]
    fn empty_graph_yields_empty_stream() {
        let g = bgi_graph::GraphBuilder::new().build();
        assert!(update_stream(&g, 1, 50, UpdateMix::default()).is_empty());
    }

    #[test]
    fn line_format_matches_ingest_contract() {
        assert_eq!(
            UpdateOp::InsertEdge { src: 1, dst: 2 }.to_line(),
            "insert 1 2"
        );
        assert_eq!(
            UpdateOp::DeleteEdge { src: 3, dst: 4 }.to_line(),
            "delete 3 4"
        );
        assert_eq!(UpdateOp::AddVertex { label: 5 }.to_line(), "addv 5");
    }
}
