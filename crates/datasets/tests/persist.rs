//! Persistence fidelity: a saved-and-reloaded dataset must be
//! *index-equivalent* to the original — building a BiG-index over it
//! passes every `bgi-verify` invariant — and damaged files must fail
//! with a typed error, never a panic.

use bgi_datasets::{persist, DatasetSpec};
use bgi_graph::GraphError;
use std::fs;
use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("bgi_persist_it_{name}"))
}

#[test]
fn roundtrip_dataset_builds_a_clean_index() {
    let ds = DatasetSpec::yago_like(600).generate();
    let dir = tmp("fidelity");
    persist::save(&ds, &dir).expect("save");
    let loaded = persist::load(&dir).expect("load");
    fs::remove_dir_all(&dir).ok();

    // Same shape...
    assert_eq!(loaded.graph.num_vertices(), ds.graph.num_vertices());
    assert_eq!(loaded.graph.num_edges(), ds.graph.num_edges());
    assert_eq!(loaded.ontology.num_edges(), ds.ontology.num_edges());

    // ...and the reloaded dataset supports the full index pipeline:
    // every invariant (layer structure, χ tables, Prop. 4.1
    // distance bounds) holds on an index built from it.
    let params = big_index::BuildParams {
        max_layers: 2,
        ..big_index::BuildParams::default()
    };
    let index = big_index::BiGIndex::build(loaded.graph.clone(), loaded.ontology.clone(), &params);
    let report = index.verify();
    assert!(
        report.is_clean(),
        "index over reloaded dataset violates invariants:\n{report}"
    );
}

#[test]
fn truncated_graph_file_is_a_typed_error() {
    let ds = DatasetSpec::yago_like(300).generate();
    let dir = tmp("truncated");
    persist::save(&ds, &dir).expect("save");
    // Cut graph.txt mid-record: drop the trailing half of the file and
    // leave a dangling partial line.
    let path = dir.join("graph.txt");
    let text = fs::read_to_string(&path).expect("read back");
    let cut = text.len() / 2;
    let boundary = text[..cut].rfind('\n').unwrap_or(0);
    // Keep a partial record after the last full line to emulate a
    // torn write.
    fs::write(&path, &text[..boundary + 2]).expect("truncate");
    let err = persist::load(&dir);
    fs::remove_dir_all(&dir).ok();
    assert!(err.is_err(), "truncated graph.txt must not load");
}

#[test]
fn corrupt_record_is_a_parse_error_with_line_number() {
    let ds = DatasetSpec::yago_like(300).generate();
    let dir = tmp("corrupt");
    persist::save(&ds, &dir).expect("save");
    let path = dir.join("ontology.txt");
    let mut text = fs::read_to_string(&path).expect("read back");
    text.push_str("zzz this is not a record\n");
    fs::write(&path, text).expect("corrupt");
    let err = persist::load(&dir);
    fs::remove_dir_all(&dir).ok();
    match err {
        Err(GraphError::Parse { line, .. }) => assert!(line > 0),
        other => panic!("expected GraphError::Parse, got {other:?}"),
    }
}

#[test]
fn corrupt_meta_label_is_a_parse_error() {
    let ds = DatasetSpec::yago_like(300).generate();
    let dir = tmp("meta");
    persist::save(&ds, &dir).expect("save");
    let path = dir.join("meta.txt");
    let mut text = fs::read_to_string(&path).expect("read back");
    text.push_str("level 99 NoSuchLabelAnywhere\n");
    fs::write(&path, text).expect("corrupt");
    let err = persist::load(&dir);
    fs::remove_dir_all(&dir).ok();
    match err {
        Err(GraphError::Parse { message, .. }) => {
            assert!(message.contains("NoSuchLabelAnywhere"), "{message}");
        }
        other => panic!("expected GraphError::Parse, got {other:?}"),
    }
}

#[test]
fn missing_files_are_io_errors() {
    let dir = tmp("missing");
    fs::create_dir_all(&dir).expect("mkdir");
    // Directory exists but holds no dataset files.
    let err = persist::load(&dir);
    fs::remove_dir_all(&dir).ok();
    match err {
        Err(GraphError::Io(_)) => {}
        other => panic!("expected GraphError::Io, got {other:?}"),
    }
}
