//! Workspace automation. Run as `cargo xtask <command>` (the alias is
//! defined in `.cargo/config.toml`).
//!
//! `cargo xtask lint` is the repo's static hygiene gate (a merge gate —
//! see CONTRIBUTING.md). It enforces, textually and without nightly
//! tooling:
//!
//! 1. every library crate root carries `#![forbid(unsafe_code)]`;
//! 2. no `unwrap()` / `expect()` / `panic!` in non-test library code,
//!    ratcheted down through `crates/xtask/lint-allowlist.txt` — a file
//!    whose budget drops as call sites are removed, and which fails the
//!    gate when it is *stale* (over **or** under budget) so the count
//!    only ever shrinks;
//! 3. no `println!` outside the bench crate and xtask itself (library
//!    code reports through return values, not stdout);
//! 4. the root manifest defines a `[workspace.lints]` table and every
//!    workspace crate inherits it via `[lints] workspace = true`;
//! 5. **budget-poll**: in `bgi-core` and `bgi-search`, every loop in a
//!    function that takes a `&Budget` must consult or forward that
//!    budget (a budgeted evaluation that spins without polling can
//!    never be cancelled);
//! 6. **failpoint-consistency**: the failpoint catalog (the doc table
//!    in `crates/store/src/fsio.rs`), the labels the store code
//!    actually fires, and the labels the store's tests exercise must
//!    agree in every direction — no phantom labels, no unexercised
//!    crash points;
//! 7. **atomics-ordering**: `Ordering::Relaxed` is forbidden in
//!    library code unless the site carries a `// relaxed:`
//!    justification comment *and* its file is budgeted in
//!    `crates/xtask/relaxed-allowlist.txt` (same ratchet semantics as
//!    gate 2);
//! 8. **lock-scope**: no mutex/rwlock guard may be live across an
//!    fsync (`sync_all` / `sync_data`) — a lock held across a blocking
//!    disk flush stalls every other thread for the device's latency.
//!
//! Setting `BGI_LINT_INJECT=<pass>` (one of `budget-poll`,
//! `failpoint-consistency`, `atomics-ordering`, `lock-scope`, or
//! `all`) feeds that pass a planted violation; the run must then fail.
//! CI uses this to prove each detector actually fires.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") => lint(),
        Some(cmd) => {
            eprintln!("unknown xtask command `{cmd}`\n\nusage: cargo xtask lint");
            ExitCode::FAILURE
        }
        None => {
            eprintln!("usage: cargo xtask lint");
            ExitCode::FAILURE
        }
    }
}

/// Repository root, derived from this crate's manifest dir
/// (`crates/xtask` → two levels up).
fn repo_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .expect("crates/xtask has a grandparent")
        .to_path_buf()
}

/// Library crates subject to all gates. `compat/*` shims are exempt
/// from the panic/println rules (they mirror external crates' APIs,
/// including panicking contracts) but still must forbid unsafe code.
const LIB_CRATES: &[&str] = &[
    "crates/graph",
    "crates/bisim",
    "crates/search",
    "crates/core",
    "crates/datasets",
    "crates/verify",
    "crates/store",
    "crates/shard",
    "crates/service",
    "crates/ingest",
];

const COMPAT_CRATES: &[&str] = &[
    "compat/rustc-hash",
    "compat/rand",
    "compat/proptest",
    "compat/criterion",
];

/// Test-harness crates: must forbid unsafe code and stay off stdout,
/// but are exempt from the panic budget — panicking with a replayable
/// diagnosis is `bgi-check`'s *reporting mechanism*, not a bug.
const HARNESS_CRATES: &[&str] = &["crates/check"];

fn lint() -> ExitCode {
    let root = repo_root();
    let inject = std::env::var("BGI_LINT_INJECT").ok();
    let inject = inject.as_deref();
    let mut errors: Vec<String> = Vec::new();

    check_forbid_unsafe(&root, &mut errors);
    check_panic_budget(&root, &mut errors);
    check_println(&root, &mut errors);
    check_workspace_lints(&root, &mut errors);
    check_budget_poll(&root, inject, &mut errors);
    check_failpoint_consistency(&root, inject, &mut errors);
    check_atomics_ordering(&root, inject, &mut errors);
    check_lock_scope(&root, inject, &mut errors);

    if errors.is_empty() {
        println!("xtask lint: all gates passed");
        ExitCode::SUCCESS
    } else {
        eprintln!("xtask lint: {} problem(s)\n", errors.len());
        for e in &errors {
            eprintln!("  - {e}");
        }
        ExitCode::FAILURE
    }
}

fn injecting(inject: Option<&str>, pass: &str) -> bool {
    matches!(inject, Some(v) if v == pass || v == "all")
}

// ---------------------------------------------------------------------------
// Gate 1: #![forbid(unsafe_code)] in every library crate root
// ---------------------------------------------------------------------------

fn check_forbid_unsafe(root: &Path, errors: &mut Vec<String>) {
    let mut roots: Vec<PathBuf> = vec![root.join("src/lib.rs")];
    for c in LIB_CRATES.iter().chain(COMPAT_CRATES).chain(HARNESS_CRATES) {
        roots.push(root.join(c).join("src/lib.rs"));
    }
    for path in roots {
        let rel = rel_str(root, &path);
        match fs::read_to_string(&path) {
            Ok(text) if text.contains("#![forbid(unsafe_code)]") => {}
            Ok(_) => errors.push(format!("{rel}: missing `#![forbid(unsafe_code)]`")),
            Err(e) => errors.push(format!("{rel}: unreadable ({e})")),
        }
    }
}

// ---------------------------------------------------------------------------
// Allowlist machinery shared by the panic and relaxed-ordering ratchets
// ---------------------------------------------------------------------------

/// Parses a `path count` allowlist, rejecting malformed lines,
/// duplicate paths, and out-of-order entries (sorted files keep diffs
/// one-line when a budget ratchets).
fn parse_allowlist(root: &Path, rel: &str, errors: &mut Vec<String>) -> BTreeMap<String, usize> {
    let mut budget: BTreeMap<String, usize> = BTreeMap::new();
    let mut prev: Option<String> = None;
    let text = match fs::read_to_string(root.join(rel)) {
        Ok(t) => t,
        Err(e) => {
            errors.push(format!("{rel}: unreadable ({e})"));
            return budget;
        }
    };
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        match (it.next(), it.next().and_then(|n| n.parse().ok())) {
            (Some(p), Some(n)) => {
                if budget.insert(p.to_string(), n).is_some() {
                    errors.push(format!("{rel}:{}: duplicate entry `{p}`", i + 1));
                }
                if prev.as_deref().is_some_and(|q| q >= p) {
                    errors.push(format!(
                        "{rel}:{}: entry `{p}` out of order — keep the list sorted",
                        i + 1
                    ));
                }
                prev = Some(p.to_string());
            }
            _ => errors.push(format!("{rel}:{}: malformed line `{line}`", i + 1)),
        }
    }
    budget
}

/// Compares actual per-file counts against a budget with strict
/// ratchet semantics: over budget fails, under budget fails (so the
/// committed numbers only ever shrink), and stale entries fail with a
/// message that says whether the file is clean or gone.
fn enforce_ratchet(
    root: &Path,
    list_rel: &str,
    what: &str,
    actual: &BTreeMap<String, usize>,
    budget: &BTreeMap<String, usize>,
    errors: &mut Vec<String>,
) {
    for (file, &n) in actual {
        match budget.get(file) {
            None => errors.push(format!(
                "{file}: {n} {what} site(s) in library code but no allowlist entry — \
                 remove the site(s) or add `{file} {n}` to {list_rel}"
            )),
            Some(&b) if n > b => errors.push(format!(
                "{file}: {n} {what} site(s), allowlist budget is {b} — \
                 the budget only ratchets down"
            )),
            Some(&b) if n < b => errors.push(format!(
                "{file}: {n} {what} site(s), allowlist budget is {b} — \
                 ratchet the budget down to {n} in {list_rel}"
            )),
            Some(_) => {}
        }
    }
    for file in budget.keys() {
        if !actual.contains_key(file) {
            let state = if root.join(file).exists() {
                "the file is clean"
            } else {
                "the file is gone"
            };
            errors.push(format!(
                "{list_rel}: stale entry `{file}` — {state}; remove the entry"
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// Gate 2: ratcheting unwrap/expect/panic budget in library code
// ---------------------------------------------------------------------------

const ALLOWLIST: &str = "crates/xtask/lint-allowlist.txt";

fn check_panic_budget(root: &Path, errors: &mut Vec<String>) {
    // Count call sites per file in non-test library code.
    let mut actual: BTreeMap<String, usize> = BTreeMap::new();
    let mut files: Vec<PathBuf> = Vec::new();
    collect_rs(&root.join("src"), &mut files);
    for c in LIB_CRATES {
        collect_rs(&root.join(c).join("src"), &mut files);
    }
    for path in &files {
        let rel = rel_str(root, path);
        let Ok(text) = fs::read_to_string(path) else {
            errors.push(format!("{rel}: unreadable"));
            continue;
        };
        let code = non_test_code(&text);
        let n = count_occurrences(&code, ".unwrap()")
            + count_occurrences(&code, ".expect(")
            + count_occurrences(&code, "panic!(")
            + count_occurrences(&code, ".unwrap_err()")
            + count_occurrences(&code, ".expect_err(");
        if n > 0 {
            actual.insert(rel, n);
        }
    }

    let budget = parse_allowlist(root, ALLOWLIST, errors);
    enforce_ratchet(
        root,
        ALLOWLIST,
        "unwrap/expect/panic",
        &actual,
        &budget,
        errors,
    );
}

// ---------------------------------------------------------------------------
// Gate 3: println! stays out of library code
// ---------------------------------------------------------------------------

fn check_println(root: &Path, errors: &mut Vec<String>) {
    let mut files: Vec<PathBuf> = Vec::new();
    collect_rs(&root.join("src"), &mut files);
    for c in LIB_CRATES.iter().chain(HARNESS_CRATES) {
        collect_rs(&root.join(c).join("src"), &mut files);
    }
    for path in &files {
        let Ok(text) = fs::read_to_string(path) else {
            continue; // already reported by the panic gate
        };
        let code = non_test_code(&text);
        let n = count_occurrences(&code, "println!(") + count_occurrences(&code, "print!(");
        if n > 0 {
            errors.push(format!(
                "{}: {n} print site(s) — library code must not write to stdout \
                 (bench and xtask are the only printing crates)",
                rel_str(root, path)
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// Gate 4: [workspace.lints] defined and inherited everywhere
// ---------------------------------------------------------------------------

fn check_workspace_lints(root: &Path, errors: &mut Vec<String>) {
    match fs::read_to_string(root.join("Cargo.toml")) {
        Ok(text) if text.contains("[workspace.lints") => {}
        Ok(_) => errors.push("Cargo.toml: missing `[workspace.lints]` table".to_string()),
        Err(e) => errors.push(format!("Cargo.toml: unreadable ({e})")),
    }
    let mut manifests: Vec<PathBuf> = vec![root.join("Cargo.toml")];
    for c in LIB_CRATES
        .iter()
        .chain(COMPAT_CRATES)
        .chain(HARNESS_CRATES)
        .chain(&["crates/bench", "crates/xtask"])
    {
        manifests.push(root.join(c).join("Cargo.toml"));
    }
    for path in manifests {
        let rel = rel_str(root, &path);
        match fs::read_to_string(&path) {
            Ok(text) => {
                let inherits = text
                    .lines()
                    .skip_while(|l| l.trim() != "[lints]")
                    .nth(1)
                    .is_some_and(|l| l.trim().starts_with("workspace") && l.contains("true"));
                if !inherits {
                    errors.push(format!(
                        "{rel}: missing `[lints]\\nworkspace = true` (workspace lint inheritance)"
                    ));
                }
            }
            Err(e) => errors.push(format!("{rel}: unreadable ({e})")),
        }
    }
}

// ---------------------------------------------------------------------------
// Gate 5: budgeted loops must poll (or forward) their Budget
// ---------------------------------------------------------------------------

const INJECT_BUDGET_POLL: &str = "fn bad(budget: &Budget) -> usize {
    let mut n = 0;
    for i in 0..1000 {
        n += i;
    }
    n
}
";

fn check_budget_poll(root: &Path, inject: Option<&str>, errors: &mut Vec<String>) {
    let mut files: Vec<PathBuf> = Vec::new();
    collect_rs(&root.join("crates/core/src"), &mut files);
    collect_rs(&root.join("crates/search/src"), &mut files);
    for path in &files {
        let Ok(text) = fs::read_to_string(path) else {
            continue;
        };
        errors.extend(budget_poll_violations(&rel_str(root, path), &text));
    }
    if injecting(inject, "budget-poll") {
        let found = budget_poll_violations("<inject:budget-poll>", INJECT_BUDGET_POLL);
        assert!(
            !found.is_empty(),
            "BGI_LINT_INJECT self-test: the budget-poll detector failed to fire"
        );
        errors.extend(found);
    }
}

/// Every *outermost* loop inside a function that takes a `&Budget`
/// must mention the budget parameter — either `budget.check()?` /
/// `budget.check_now()?` directly, or by forwarding `budget` into a
/// budgeted callee. A loop may opt out with a `// budget-exempt:
/// <reason>` comment on the loop header or the line above (for loops
/// with a small static trip count).
fn budget_poll_violations(rel: &str, text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let lines = non_test_lines(text);
    let mut i = 0;
    while i < lines.len() {
        // Find a fn signature; accumulate it until the body opens.
        if !has_token(&lines[i].stripped, "fn") {
            i += 1;
            continue;
        }
        let mut sig = String::new();
        let mut j = i;
        let body_open = loop {
            if j >= lines.len() {
                break None;
            }
            let s = &lines[j].stripped;
            let _ = write!(sig, "{s} ");
            if s.contains('{') {
                break Some(j);
            }
            if s.contains(';') {
                break None; // trait method declaration — no body
            }
            j += 1;
        };
        let Some(body_open) = body_open else {
            i = j + 1;
            continue;
        };
        let Some(param) = budget_param(&sig) else {
            i = body_open + 1;
            continue;
        };
        let fn_name = sig
            .split("fn ")
            .nth(1)
            .and_then(|r| r.split(['(', '<', ' ']).next())
            .unwrap_or("?")
            .to_string();

        // Walk the body, collecting outermost loop regions.
        let mut depth: i64 = 0;
        let mut k = body_open;
        let mut loop_start: Option<(usize, i64, bool)> = None; // (line idx, depth, exempt)
        let mut loop_text = String::new();
        let mut body_entered = false;
        while k < lines.len() {
            let s = &lines[k].stripped;
            let opens = s.matches('{').count() as i64;
            let closes = s.matches('}').count() as i64;
            if let Some((start, at_depth, exempt)) = loop_start {
                let _ = writeln!(loop_text, "{s}");
                let after = depth + opens - closes;
                if after <= at_depth {
                    let polled = loop_text.contains(&param);
                    if !polled && !exempt {
                        out.push(format!(
                            "{rel}:{}: loop in budgeted fn `{fn_name}` never reaches \
                             `{param}.check()` (nor forwards `{param}`) — an expired \
                             budget cannot interrupt it",
                            lines[start].number
                        ));
                    }
                    loop_start = None;
                    loop_text.clear();
                }
            } else if body_entered
                && (has_token(s, "for") || has_token(s, "while") || has_token(s, "loop"))
            {
                let exempt = lines[k].raw.contains("// budget-exempt:")
                    || (k > 0 && lines[k - 1].raw.contains("// budget-exempt:"));
                loop_start = Some((k, depth, exempt));
                let _ = writeln!(loop_text, "{s}");
            }
            depth += opens - closes;
            if opens > 0 {
                body_entered = true;
            }
            if body_entered && depth <= 0 {
                break; // function body closed
            }
            k += 1;
        }
        i = k + 1;
    }
    out
}

/// Extracts the parameter name bound to `&Budget` in a signature, if
/// any (`budget: &Budget` → `budget`).
fn budget_param(sig: &str) -> Option<String> {
    let idx = sig.find(": &Budget")?;
    let name: String = sig[..idx]
        .chars()
        .rev()
        .take_while(|c| c.isalnum_or_underscore())
        .collect::<Vec<_>>()
        .into_iter()
        .rev()
        .collect();
    (!name.is_empty()).then_some(name)
}

trait IdentChar {
    fn isalnum_or_underscore(self) -> bool;
}
impl IdentChar for char {
    fn isalnum_or_underscore(self) -> bool {
        self.is_ascii_alphanumeric() || self == '_'
    }
}

/// True when `kw` appears in `line` as a standalone word.
fn has_token(line: &str, kw: &str) -> bool {
    let mut rest = line;
    while let Some(pos) = rest.find(kw) {
        let before_ok = pos == 0
            || !rest[..pos]
                .chars()
                .next_back()
                .is_some_and(|c| c.isalnum_or_underscore() || c == '.');
        let after = rest[pos + kw.len()..].chars().next();
        let after_ok = !after.is_some_and(IdentChar::isalnum_or_underscore);
        if before_ok && after_ok {
            return true;
        }
        rest = &rest[pos + kw.len()..];
    }
    false
}

// ---------------------------------------------------------------------------
// Gate 6: failpoint catalog ↔ code ↔ crash tests, all directions
// ---------------------------------------------------------------------------

const FSIO: &str = "crates/store/src/fsio.rs";

fn check_failpoint_consistency(root: &Path, inject: Option<&str>, errors: &mut Vec<String>) {
    let catalog = match fs::read_to_string(root.join(FSIO)) {
        Ok(text) => catalog_labels(&text),
        Err(e) => {
            errors.push(format!("{FSIO}: unreadable ({e})"));
            return;
        }
    };
    if catalog.is_empty() {
        errors.push(format!(
            "{FSIO}: failpoint catalog table is empty or missing"
        ));
        return;
    }

    // Labels the store code fires (non-test, skipping `const` file-name
    // declarations like `wal.log`).
    let mut src_labels: BTreeMap<String, String> = BTreeMap::new();
    let mut files: Vec<PathBuf> = Vec::new();
    collect_rs(&root.join("crates/store/src"), &mut files);
    for path in &files {
        let Ok(text) = fs::read_to_string(path) else {
            continue;
        };
        let rel = rel_str(root, path);
        for line in non_test_lines(&text) {
            if line.stripped.contains("const ") {
                continue;
            }
            for label in label_literals(&strip_comments(line.raw)) {
                src_labels
                    .entry(label)
                    .or_insert_with(|| format!("{rel}:{}", line.number));
            }
        }
    }
    if injecting(inject, "failpoint-consistency") {
        src_labels.insert(
            "save.injected_phantom".to_string(),
            "<inject:failpoint-consistency>".to_string(),
        );
    }

    // Labels the store's tests exercise.
    let mut test_labels: BTreeMap<String, String> = BTreeMap::new();
    let mut tests: Vec<PathBuf> = Vec::new();
    collect_rs(&root.join("crates/store/tests"), &mut tests);
    for path in &tests {
        let Ok(text) = fs::read_to_string(path) else {
            continue;
        };
        let rel = rel_str(root, path);
        for (n, raw) in text.lines().enumerate() {
            for label in label_literals(&strip_comments(raw)) {
                test_labels
                    .entry(label)
                    .or_insert_with(|| format!("{rel}:{}", n + 1));
            }
        }
    }

    for (label, site) in &src_labels {
        if !catalog.contains(label) {
            errors.push(format!(
                "{site}: failpoint `{label}` is not in the {FSIO} catalog table — \
                 document it there"
            ));
        }
    }
    for (label, site) in &test_labels {
        if !catalog.contains(label) {
            errors.push(format!(
                "{site}: test references failpoint `{label}` which is not in the \
                 {FSIO} catalog — stale label?"
            ));
        }
    }
    for label in &catalog {
        if !src_labels.contains_key(label) {
            errors.push(format!(
                "{FSIO}: catalog lists `{label}` but no store code fires it — \
                 remove the row or restore the site"
            ));
        }
        if !test_labels.contains_key(label) {
            errors.push(format!(
                "failpoint `{label}` is never exercised by crates/store/tests — \
                 add it to the crash matrix (or a targeted failpoint test)"
            ));
        }
    }
}

/// Parses the fsio doc table: lines shaped `//! | `label` | ... |`.
fn catalog_labels(fsio_text: &str) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for line in fsio_text.lines() {
        let t = line.trim();
        if !t.starts_with("//!") || !t.contains('|') {
            continue;
        }
        if let Some(start) = t.find('`') {
            if let Some(len) = t[start + 1..].find('`') {
                let label = &t[start + 1..start + 1 + len];
                if is_label(label) {
                    out.insert(label.to_string());
                }
            }
        }
    }
    out
}

/// Extracts `"save.x"` / `"load.x"` / `"wal.x"` string literals.
fn label_literals(line: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = line;
    while let Some(open) = rest.find('"') {
        let tail = &rest[open + 1..];
        let Some(close) = tail.find('"') else { break };
        let lit = &tail[..close];
        if is_label(lit) {
            out.push(lit.to_string());
        }
        rest = &tail[close + 1..];
    }
    out
}

fn is_label(s: &str) -> bool {
    let Some((ns, op)) = s.split_once('.') else {
        return false;
    };
    matches!(ns, "save" | "load" | "wal")
        && !op.is_empty()
        && op.chars().all(|c| c.is_ascii_lowercase() || c == '_')
}

// ---------------------------------------------------------------------------
// Gate 7: Ordering::Relaxed needs a justification and a budget
// ---------------------------------------------------------------------------

const RELAXED_ALLOWLIST: &str = "crates/xtask/relaxed-allowlist.txt";

const INJECT_RELAXED: &str = "fn bad(n: &AtomicU64) {
    n.fetch_add(1, Ordering::Relaxed);
}
";

fn check_atomics_ordering(root: &Path, inject: Option<&str>, errors: &mut Vec<String>) {
    let mut actual: BTreeMap<String, usize> = BTreeMap::new();
    let mut files: Vec<PathBuf> = Vec::new();
    for c in LIB_CRATES.iter().chain(HARNESS_CRATES) {
        collect_rs(&root.join(c).join("src"), &mut files);
    }
    for path in &files {
        let Ok(text) = fs::read_to_string(path) else {
            continue;
        };
        let rel = rel_str(root, path);
        let (count, unjustified) = relaxed_sites(&text);
        if count > 0 {
            actual.insert(rel.clone(), count);
        }
        for line_no in unjustified {
            errors.push(format!(
                "{rel}:{line_no}: `Ordering::Relaxed` without a `// relaxed:` \
                 justification on the same or a preceding line — say why no \
                 ordering is needed, or use Acquire/Release"
            ));
        }
    }
    if injecting(inject, "atomics-ordering") {
        let (count, unjustified) = relaxed_sites(INJECT_RELAXED);
        assert!(
            count == 1 && !unjustified.is_empty(),
            "BGI_LINT_INJECT self-test: the atomics-ordering detector failed to fire"
        );
        errors.push(format!(
            "<inject:atomics-ordering>:{}: planted unjustified `Ordering::Relaxed`",
            unjustified[0]
        ));
    }

    let budget = parse_allowlist(root, RELAXED_ALLOWLIST, errors);
    enforce_ratchet(
        root,
        RELAXED_ALLOWLIST,
        "Ordering::Relaxed",
        &actual,
        &budget,
        errors,
    );
}

/// Returns (total Relaxed sites, line numbers lacking justification)
/// for one file's non-test code. A justification is a `// relaxed:`
/// comment on the site's line or either of the two lines above it.
fn relaxed_sites(text: &str) -> (usize, Vec<usize>) {
    let all: Vec<&str> = text.lines().collect();
    let mut count = 0;
    let mut unjustified = Vec::new();
    for line in non_test_lines(text) {
        let n = line.stripped.matches("Ordering::Relaxed").count();
        if n == 0 {
            continue;
        }
        count += n;
        let idx = line.number - 1;
        let justified = (idx.saturating_sub(2)..=idx)
            .any(|i| all.get(i).is_some_and(|l| l.contains("// relaxed:")));
        if !justified {
            unjustified.push(line.number);
        }
    }
    (count, unjustified)
}

// ---------------------------------------------------------------------------
// Gate 8: no lock guard held across an fsync
// ---------------------------------------------------------------------------

const INJECT_LOCK_SCOPE: &str = "fn bad(m: &Mutex<File>) {
    let f = m.lock();
    f.sync_all();
}
";

fn check_lock_scope(root: &Path, inject: Option<&str>, errors: &mut Vec<String>) {
    let mut files: Vec<PathBuf> = Vec::new();
    for c in LIB_CRATES.iter().chain(HARNESS_CRATES) {
        collect_rs(&root.join(c).join("src"), &mut files);
    }
    for path in &files {
        let Ok(text) = fs::read_to_string(path) else {
            continue;
        };
        errors.extend(lock_scope_violations(&rel_str(root, path), &text));
    }
    if injecting(inject, "lock-scope") {
        let found = lock_scope_violations("<inject:lock-scope>", INJECT_LOCK_SCOPE);
        assert!(
            !found.is_empty(),
            "BGI_LINT_INJECT self-test: the lock-scope detector failed to fire"
        );
        errors.extend(found);
    }
}

/// Tracks `let guard = ….lock()` / `….write()` bindings by brace depth
/// and flags any direct fsync (`sync_all` / `sync_data`) while one is
/// live. `drop(guard)` releases it early; a guard dies when its block
/// closes. Textual: only same-function, direct sync calls are seen.
fn lock_scope_violations(rel: &str, text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth: i64 = 0;
    // (alive while depth >= this, binding name, acquired at line)
    let mut guards: Vec<(i64, Option<String>, usize)> = Vec::new();
    for line in non_test_lines(text) {
        let s = &line.stripped;
        let opens = s.matches('{').count() as i64;
        let closes = s.matches('}').count() as i64;
        let after = depth + opens - closes;

        if s.contains(".sync_all(") || s.contains(".sync_data(") {
            if let Some((_, name, at)) = guards.last() {
                let who = name.as_deref().unwrap_or("a lock guard");
                out.push(format!(
                    "{rel}:{}: fsync while `{who}` (acquired at line {at}) is still \
                     held — flush outside the critical section or drop the guard first",
                    line.number
                ));
            }
        }
        if s.contains("let ") && (s.contains(".lock()") || s.contains(".write()")) {
            guards.push((after, guard_name(s), line.number));
        }
        if s.contains("drop(") {
            guards.retain(|(_, name, _)| {
                !name
                    .as_deref()
                    .is_some_and(|n| s.contains(&format!("drop({n})")))
            });
        }
        depth = after;
        guards.retain(|&(d, _, _)| depth >= d);
    }
    out
}

/// Best-effort binding name from a `let` line (`let mut g = …` → `g`).
fn guard_name(line: &str) -> Option<String> {
    let after_let = line.split("let ").nth(1)?;
    let pat = after_let.split(['=', ':']).next()?.trim();
    let pat = pat.trim_start_matches("mut ").trim();
    let inner = pat
        .split_once('(')
        .map_or(pat, |(_, rest)| rest.trim_end_matches([')', ' ']));
    let name: String = inner
        .chars()
        .take_while(|c| c.isalnum_or_underscore())
        .collect();
    (!name.is_empty()).then_some(name)
}

// ---------------------------------------------------------------------------
// Text utilities
// ---------------------------------------------------------------------------

fn rel_str(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for p in paths {
        if p.is_dir() {
            collect_rs(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
}

/// One surviving line of non-test code: its 1-based source line
/// number, the raw text (comments intact, for justification checks),
/// and the stripped text (comments and literal contents removed, for
/// substring matching).
struct CodeLine<'a> {
    number: usize,
    raw: &'a str,
    stripped: String,
}

/// The lines of a source file the gates should see: `//` comments and
/// string/char literal contents removed, and everything inside
/// `#[cfg(test)]`-attributed items dropped (tracked by brace
/// matching). The result is not valid Rust — it exists only to be
/// substring-matched.
fn non_test_lines(text: &str) -> Vec<CodeLine<'_>> {
    let mut out = Vec::new();
    // Depth of the brace nesting at which a #[cfg(test)] item started;
    // while inside, lines are dropped.
    let mut skip_from: Option<usize> = None;
    let mut depth: usize = 0;
    let mut pending_test_attr = false;

    for (i, line) in text.lines().enumerate() {
        let stripped = strip_line(line);
        let trimmed = stripped.trim();

        if skip_from.is_none()
            && (trimmed.starts_with("#[cfg(test)]") || pending_test_attr)
            && !trimmed.is_empty()
        {
            // The attribute may sit on its own line above the item.
            if trimmed.starts_with("#[") && !trimmed.contains('{') {
                pending_test_attr = true;
                continue;
            }
            pending_test_attr = false;
            skip_from = Some(depth);
        }

        let opens = stripped.matches('{').count();
        let closes = stripped.matches('}').count();
        let new_depth = (depth + opens).saturating_sub(closes);

        match skip_from {
            Some(base) => {
                // The skipped item ends when its braces close back to
                // the depth it started at (works for `mod tests { ... }`
                // and single-line items alike).
                if new_depth <= base && (closes > 0 || opens == 0) {
                    skip_from = None;
                }
            }
            None => out.push(CodeLine {
                number: i + 1,
                raw: line,
                stripped,
            }),
        }
        depth = new_depth;
    }
    out
}

fn non_test_code(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for line in non_test_lines(text) {
        let _ = writeln!(out, "{}", line.stripped);
    }
    out
}

/// Remove `//` comments and blank out string/char literal contents from
/// one line so `unwrap()` inside a doc comment or format string is not
/// counted.
fn strip_line(line: &str) -> String {
    let mut out = String::with_capacity(line.len());
    let mut chars = line.chars().peekable();
    let mut in_str = false;
    while let Some(c) = chars.next() {
        if in_str {
            match c {
                '\\' => {
                    chars.next(); // skip the escaped char
                }
                '"' => {
                    in_str = false;
                    out.push('"');
                }
                _ => {}
            }
            continue;
        }
        match c {
            '"' => {
                in_str = true;
                out.push('"');
            }
            '/' if chars.peek() == Some(&'/') => break,
            _ => out.push(c),
        }
    }
    out
}

/// Remove `//` comments but keep string literal contents (for label
/// extraction, where the literal itself is the signal).
fn strip_comments(line: &str) -> String {
    let mut out = String::with_capacity(line.len());
    let mut chars = line.chars().peekable();
    let mut in_str = false;
    while let Some(c) = chars.next() {
        if in_str {
            out.push(c);
            match c {
                '\\' => {
                    if let Some(next) = chars.next() {
                        out.push(next);
                    }
                }
                '"' => in_str = false,
                _ => {}
            }
            continue;
        }
        match c {
            '"' => {
                in_str = true;
                out.push('"');
            }
            '/' if chars.peek() == Some(&'/') => break,
            _ => out.push(c),
        }
    }
    out
}

fn count_occurrences(haystack: &str, needle: &str) -> usize {
    haystack.matches(needle).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strip_line_removes_comments_and_strings() {
        assert_eq!(strip_line("let x = 1; // x.unwrap()"), "let x = 1; ");
        assert_eq!(strip_line(r#"let s = "a.unwrap()";"#), r#"let s = "";"#);
    }

    #[test]
    fn non_test_code_drops_test_modules() {
        let src = "fn a() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n  fn b() { y.unwrap(); }\n}\nfn c() {}\n";
        let code = non_test_code(src);
        assert_eq!(count_occurrences(&code, ".unwrap()"), 1);
        assert!(code.contains("fn c()"));
    }

    #[test]
    fn budget_poll_flags_an_unpolled_loop() {
        let found = budget_poll_violations("t.rs", INJECT_BUDGET_POLL);
        assert_eq!(found.len(), 1);
        assert!(found[0].contains("t.rs:3"), "{found:?}");
        assert!(found[0].contains("`bad`"), "{found:?}");
    }

    #[test]
    fn budget_poll_accepts_checked_and_forwarding_loops() {
        let src = "fn good(budget: &Budget) -> Result<(), Interrupted> {
    for _ in 0..10 {
        budget.check()?;
    }
    while more() {
        step(budget)?;
    }
    Ok(())
}
fn unbudgeted() {
    for _ in 0..10 {
        spin();
    }
}
";
        assert!(budget_poll_violations("t.rs", src).is_empty());
    }

    #[test]
    fn budget_poll_honors_exemption_comments() {
        let src = "fn mixed(budget: &Budget) {
    // budget-exempt: four semantics, statically bounded
    for s in SEMANTICS {
        table(s);
    }
}
";
        assert!(budget_poll_violations("t.rs", src).is_empty());
    }

    #[test]
    fn budget_poll_handles_multiline_signatures() {
        let src = "fn long(
    base: &Graph,
    budget: &Budget,
) -> usize {
    loop {
        if done() { break; }
    }
    0
}
";
        let found = budget_poll_violations("t.rs", src);
        assert_eq!(found.len(), 1);
        assert!(found[0].contains("`long`"), "{found:?}");
    }

    #[test]
    fn catalog_and_label_extraction() {
        let fsio = "//! | `save.write_file` | write |\n//! | `wal.fsync` | sync |\n";
        let cat = catalog_labels(fsio);
        assert!(cat.contains("save.write_file") && cat.contains("wal.fsync"));
        assert_eq!(
            label_literals(r#"fp.check("wal.append") ; x("not.a.label")"#),
            vec!["wal.append".to_string()]
        );
        assert!(label_literals(r#"const WAL_FILE: &str = "wal.log";"#) == vec!["wal.log"]);
        assert!(!is_label("wal."));
        assert!(!is_label("warn.append"));
    }

    #[test]
    fn relaxed_requires_nearby_justification() {
        let bad = "fn f() {\n    n.fetch_add(1, Ordering::Relaxed);\n}\n";
        let (count, unjustified) = relaxed_sites(bad);
        assert_eq!((count, unjustified), (1, vec![2]));
        let good =
            "fn f() {\n    // relaxed: pure counter\n    n.fetch_add(1, Ordering::Relaxed);\n}\n";
        let (count, unjustified) = relaxed_sites(good);
        assert_eq!((count, unjustified.len()), (1, 0));
    }

    #[test]
    fn lock_scope_flags_guard_held_across_fsync() {
        let found = lock_scope_violations("t.rs", INJECT_LOCK_SCOPE);
        assert_eq!(found.len(), 1);
        assert!(found[0].contains("`f`"), "{found:?}");
    }

    #[test]
    fn lock_scope_accepts_dropped_and_scoped_guards() {
        let src = "fn good(m: &Mutex<Vec<u8>>, f: &File) {
    {
        let g = m.lock();
        g.push(1);
    }
    f.sync_all();
    let h = m.lock();
    drop(h);
    f.sync_all();
}
";
        assert!(lock_scope_violations("t.rs", src).is_empty());
    }

    #[test]
    fn allowlist_ratchet_reports_over_under_and_stale() {
        let actual: BTreeMap<String, usize> = [("a.rs".into(), 3usize), ("b.rs".into(), 1)].into();
        let budget: BTreeMap<String, usize> = [
            ("a.rs".into(), 2usize),
            ("b.rs".into(), 2),
            ("c.rs".into(), 1),
        ]
        .into();
        let mut errors = Vec::new();
        enforce_ratchet(
            Path::new("/nonexistent"),
            "list.txt",
            "x",
            &actual,
            &budget,
            &mut errors,
        );
        assert_eq!(errors.len(), 3, "{errors:?}");
        assert!(errors[0].contains("only ratchets down"));
        assert!(errors[1].contains("ratchet the budget down to 1"));
        assert!(errors[2].contains("stale entry `c.rs`") && errors[2].contains("gone"));
    }
}
