//! Workspace automation. Run as `cargo xtask <command>` (the alias is
//! defined in `.cargo/config.toml`).
//!
//! `cargo xtask lint` is the repo's static hygiene gate (a merge gate —
//! see CONTRIBUTING.md). It enforces, textually and without nightly
//! tooling:
//!
//! 1. every library crate root carries `#![forbid(unsafe_code)]`;
//! 2. no `unwrap()` / `expect()` / `panic!` in non-test library code,
//!    ratcheted down through `crates/xtask/lint-allowlist.txt` — a file
//!    whose budget drops as call sites are removed, and which fails the
//!    gate when it is *stale* (over **or** under budget) so the count
//!    only ever shrinks;
//! 3. no `println!` outside the bench crate and xtask itself (library
//!    code reports through return values, not stdout);
//! 4. the root manifest defines a `[workspace.lints]` table and every
//!    workspace crate inherits it via `[lints] workspace = true`.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") => lint(),
        Some(cmd) => {
            eprintln!("unknown xtask command `{cmd}`\n\nusage: cargo xtask lint");
            ExitCode::FAILURE
        }
        None => {
            eprintln!("usage: cargo xtask lint");
            ExitCode::FAILURE
        }
    }
}

/// Repository root, derived from this crate's manifest dir
/// (`crates/xtask` → two levels up).
fn repo_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .expect("crates/xtask has a grandparent")
        .to_path_buf()
}

/// Library crates subject to all gates. `compat/*` shims are exempt
/// from the panic/println rules (they mirror external crates' APIs,
/// including panicking contracts) but still must forbid unsafe code.
const LIB_CRATES: &[&str] = &[
    "crates/graph",
    "crates/bisim",
    "crates/search",
    "crates/core",
    "crates/datasets",
    "crates/verify",
    "crates/store",
    "crates/service",
    "crates/ingest",
];

const COMPAT_CRATES: &[&str] = &[
    "compat/rustc-hash",
    "compat/rand",
    "compat/proptest",
    "compat/criterion",
];

fn lint() -> ExitCode {
    let root = repo_root();
    let mut errors: Vec<String> = Vec::new();

    check_forbid_unsafe(&root, &mut errors);
    check_panic_budget(&root, &mut errors);
    check_println(&root, &mut errors);
    check_workspace_lints(&root, &mut errors);

    if errors.is_empty() {
        println!("xtask lint: all gates passed");
        ExitCode::SUCCESS
    } else {
        eprintln!("xtask lint: {} problem(s)\n", errors.len());
        for e in &errors {
            eprintln!("  - {e}");
        }
        ExitCode::FAILURE
    }
}

// ---------------------------------------------------------------------------
// Gate 1: #![forbid(unsafe_code)] in every library crate root
// ---------------------------------------------------------------------------

fn check_forbid_unsafe(root: &Path, errors: &mut Vec<String>) {
    let mut roots: Vec<PathBuf> = vec![root.join("src/lib.rs")];
    for c in LIB_CRATES.iter().chain(COMPAT_CRATES) {
        roots.push(root.join(c).join("src/lib.rs"));
    }
    for path in roots {
        let rel = rel_str(root, &path);
        match fs::read_to_string(&path) {
            Ok(text) if text.contains("#![forbid(unsafe_code)]") => {}
            Ok(_) => errors.push(format!("{rel}: missing `#![forbid(unsafe_code)]`")),
            Err(e) => errors.push(format!("{rel}: unreadable ({e})")),
        }
    }
}

// ---------------------------------------------------------------------------
// Gate 2: ratcheting unwrap/expect/panic budget in library code
// ---------------------------------------------------------------------------

const ALLOWLIST: &str = "crates/xtask/lint-allowlist.txt";

fn check_panic_budget(root: &Path, errors: &mut Vec<String>) {
    // Count call sites per file in non-test library code.
    let mut actual: BTreeMap<String, usize> = BTreeMap::new();
    let mut files: Vec<PathBuf> = Vec::new();
    collect_rs(&root.join("src"), &mut files);
    for c in LIB_CRATES {
        collect_rs(&root.join(c).join("src"), &mut files);
    }
    for path in &files {
        let rel = rel_str(root, path);
        let Ok(text) = fs::read_to_string(path) else {
            errors.push(format!("{rel}: unreadable"));
            continue;
        };
        let code = non_test_code(&text);
        let n = count_occurrences(&code, ".unwrap()")
            + count_occurrences(&code, ".expect(")
            + count_occurrences(&code, "panic!(")
            + count_occurrences(&code, ".unwrap_err()")
            + count_occurrences(&code, ".expect_err(");
        if n > 0 {
            actual.insert(rel, n);
        }
    }

    // Compare against the committed budget.
    let allow_path = root.join(ALLOWLIST);
    let mut budget: BTreeMap<String, usize> = BTreeMap::new();
    match fs::read_to_string(&allow_path) {
        Ok(text) => {
            for (i, line) in text.lines().enumerate() {
                let line = line.trim();
                if line.is_empty() || line.starts_with('#') {
                    continue;
                }
                let mut it = line.split_whitespace();
                match (it.next(), it.next().and_then(|n| n.parse().ok())) {
                    (Some(p), Some(n)) => {
                        budget.insert(p.to_string(), n);
                    }
                    _ => errors.push(format!("{ALLOWLIST}:{}: malformed line `{line}`", i + 1)),
                }
            }
        }
        Err(e) => {
            errors.push(format!("{ALLOWLIST}: unreadable ({e})"));
            return;
        }
    }

    for (file, &n) in &actual {
        match budget.get(file) {
            None => errors.push(format!(
                "{file}: {n} unwrap/expect/panic site(s) in library code but no allowlist \
                 entry — handle the error or add `{file} {n}` to {ALLOWLIST}"
            )),
            Some(&b) if n > b => errors.push(format!(
                "{file}: {n} unwrap/expect/panic site(s), allowlist budget is {b} — \
                 the budget only ratchets down"
            )),
            Some(&b) if n < b => errors.push(format!(
                "{file}: {n} unwrap/expect/panic site(s), allowlist budget is {b} — \
                 ratchet the budget down to {n} in {ALLOWLIST}"
            )),
            Some(_) => {}
        }
    }
    for file in budget.keys() {
        if !actual.contains_key(file) {
            errors.push(format!(
                "{ALLOWLIST}: stale entry `{file}` — the file is clean (or gone); remove it"
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// Gate 3: println! stays out of library code
// ---------------------------------------------------------------------------

fn check_println(root: &Path, errors: &mut Vec<String>) {
    let mut files: Vec<PathBuf> = Vec::new();
    collect_rs(&root.join("src"), &mut files);
    for c in LIB_CRATES {
        collect_rs(&root.join(c).join("src"), &mut files);
    }
    for path in &files {
        let Ok(text) = fs::read_to_string(path) else {
            continue; // already reported by the panic gate
        };
        let code = non_test_code(&text);
        let n = count_occurrences(&code, "println!(") + count_occurrences(&code, "print!(");
        if n > 0 {
            errors.push(format!(
                "{}: {n} print site(s) — library code must not write to stdout \
                 (bench and xtask are the only printing crates)",
                rel_str(root, path)
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// Gate 4: [workspace.lints] defined and inherited everywhere
// ---------------------------------------------------------------------------

fn check_workspace_lints(root: &Path, errors: &mut Vec<String>) {
    match fs::read_to_string(root.join("Cargo.toml")) {
        Ok(text) if text.contains("[workspace.lints") => {}
        Ok(_) => errors.push("Cargo.toml: missing `[workspace.lints]` table".to_string()),
        Err(e) => errors.push(format!("Cargo.toml: unreadable ({e})")),
    }
    let mut manifests: Vec<PathBuf> = vec![root.join("Cargo.toml")];
    for c in LIB_CRATES
        .iter()
        .chain(COMPAT_CRATES)
        .chain(&["crates/bench", "crates/xtask"])
    {
        manifests.push(root.join(c).join("Cargo.toml"));
    }
    for path in manifests {
        let rel = rel_str(root, &path);
        match fs::read_to_string(&path) {
            Ok(text) => {
                let inherits = text
                    .lines()
                    .skip_while(|l| l.trim() != "[lints]")
                    .nth(1)
                    .is_some_and(|l| l.trim().starts_with("workspace") && l.contains("true"));
                if !inherits {
                    errors.push(format!(
                        "{rel}: missing `[lints]\\nworkspace = true` (workspace lint inheritance)"
                    ));
                }
            }
            Err(e) => errors.push(format!("{rel}: unreadable ({e})")),
        }
    }
}

// ---------------------------------------------------------------------------
// Text utilities
// ---------------------------------------------------------------------------

fn rel_str(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for p in paths {
        if p.is_dir() {
            collect_rs(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
}

/// Strip the parts of a source file the gates should not see: `//` line
/// comments, string/char literal contents, and everything inside
/// `#[cfg(test)]`-attributed items (tracked by brace matching). The
/// result is not valid Rust — it exists only to be substring-counted.
fn non_test_code(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    // Depth of the brace nesting at which a #[cfg(test)] item started;
    // while inside, lines are dropped.
    let mut skip_from: Option<usize> = None;
    let mut depth: usize = 0;
    let mut pending_test_attr = false;

    for line in text.lines() {
        let stripped = strip_line(line);
        let trimmed = stripped.trim();

        if skip_from.is_none()
            && (trimmed.starts_with("#[cfg(test)]") || pending_test_attr)
            && !trimmed.is_empty()
        {
            // The attribute may sit on its own line above the item.
            if trimmed.starts_with("#[") && !trimmed.contains('{') {
                pending_test_attr = true;
                continue;
            }
            pending_test_attr = false;
            skip_from = Some(depth);
        }

        let opens = stripped.matches('{').count();
        let closes = stripped.matches('}').count();
        let new_depth = (depth + opens).saturating_sub(closes);

        match skip_from {
            Some(base) => {
                // The skipped item ends when its braces close back to
                // the depth it started at (works for `mod tests { ... }`
                // and single-line items alike).
                if new_depth <= base && (closes > 0 || opens == 0) {
                    skip_from = None;
                }
            }
            None => {
                let _ = writeln!(out, "{stripped}");
            }
        }
        depth = new_depth;
    }
    out
}

/// Remove `//` comments and blank out string/char literal contents from
/// one line so `unwrap()` inside a doc comment or format string is not
/// counted.
fn strip_line(line: &str) -> String {
    let mut out = String::with_capacity(line.len());
    let mut chars = line.chars().peekable();
    let mut in_str = false;
    while let Some(c) = chars.next() {
        if in_str {
            match c {
                '\\' => {
                    chars.next(); // skip the escaped char
                }
                '"' => {
                    in_str = false;
                    out.push('"');
                }
                _ => {}
            }
            continue;
        }
        match c {
            '"' => {
                in_str = true;
                out.push('"');
            }
            '/' if chars.peek() == Some(&'/') => break,
            _ => out.push(c),
        }
    }
    out
}

fn count_occurrences(haystack: &str, needle: &str) -> usize {
    haystack.matches(needle).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strip_line_removes_comments_and_strings() {
        assert_eq!(strip_line("let x = 1; // x.unwrap()"), "let x = 1; ");
        assert_eq!(strip_line(r#"let s = "a.unwrap()";"#), r#"let s = "";"#);
    }

    #[test]
    fn non_test_code_drops_test_modules() {
        let src = "fn a() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n  fn b() { y.unwrap(); }\n}\nfn c() {}\n";
        let code = non_test_code(src);
        assert_eq!(count_occurrences(&code, ".unwrap()"), 1);
        assert!(code.contains("fn c()"));
    }
}
